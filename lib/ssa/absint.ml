(* Forward abstract interpretation over SSA actions (the semantic layer on
   top of PR 1's syntactic verifiers).

   The domain is a product of *known-bits* (each of the 64 bits is known-0,
   known-1 or unknown) and an *unsigned interval* [lo, hi].  The two halves
   refine each other on construction: an interval upper bound forces the
   high bits to known-zero, and known bits tighten the interval bounds.
   Decode-instruction fields are seeded from the optimization context: a
   field of width w starts as [0, 2^w-1] with the high 64-w bits
   known-zero, so the analysis can prove facts that hold for *every*
   decoding of the instruction class, not just one concrete instance.

   Widening: interval upper bounds climb the 2^k-1 ladder at loop heads
   (at most 64 rungs), lower bounds drop to 0, and the known-bits half
   needs no widening (its lattice has finite height).  This keeps loop
   analysis convergent while preserving the width information the range
   checker needs (e.g. the toy `loopy` action's induction variable widens
   to exactly [0, 15] for a 4-bit bound).

   Three consumers live below the engine:
   - [simplify]: the O3 `absint-simplify` pass body (fold always/never
     branches, rewrite fully-known results to constants, drop masks and
     normalizations proved redundant);
   - [validate]: per-statement translation validation of an optimized
     action against its unoptimized form (statement ids are stable across
     the pass pipeline, which only removes statements or rewrites
     operands in place);
   - [check_ranges]: proof that every bank/slot access index is within
     the bounds the architecture declares. *)

module Ast = Adl.Ast
module Eval = Adl.Eval
module Bits = Dbt_util.Bits

(* --- architecture context -------------------------------------------------- *)

type ctx = {
  field_widths : (string * int) list; (* decode-pattern field widths *)
  bank_widths : (int * int) list; (* bank index -> element width *)
  slot_widths : (int * int) list;
  bank_counts : (int * int) list; (* bank index -> number of elements *)
  slot_indices : int list; (* declared slot indices *)
}

let no_ctx =
  { field_widths = []; bank_widths = []; slot_widths = []; bank_counts = []; slot_indices = [] }

(* --- the abstract value ---------------------------------------------------- *)

(* Invariants of [V] (established by [make]):
   - zeros land ones = 0
   - ones <=u lo <=u hi <=u lognot zeros (all comparisons unsigned) *)
type av = { zeros : int64; ones : int64; lo : int64; hi : int64 }

type t = Bot | V of av

let umin a b = if Bits.ule a b then a else b
let umax a b = if Bits.ule a b then b else a

(* Number of significant bits of an unsigned value. *)
let sigbits v = 64 - Bits.clz v

let make zeros ones lo hi =
  if Int64.logand zeros ones <> 0L then Bot
  else begin
    (* Mutual refinement of the two halves, to a fixed point: interval
       bounds clamp to what the bits allow, and the interval's high bound
       forces leading known-zeros. *)
    let zeros = ref zeros and lo = ref (umax lo ones) and hi = ref (umin hi (Int64.lognot zeros)) in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let z = Int64.lognot (Bits.mask (sigbits !hi)) in
      if Int64.logand z (Int64.lognot !zeros) <> 0L then begin
        zeros := Int64.logor !zeros z;
        continue_ := true
      end;
      let hi' = umin !hi (Int64.lognot !zeros) in
      if hi' <> !hi then begin
        hi := hi';
        continue_ := true
      end
    done;
    if Int64.logand !zeros ones <> 0L then Bot
    else if Bits.ult !hi !lo then Bot
    else V { zeros = !zeros; ones; lo = !lo; hi = !hi }
  end

let bot = Bot
let top = make 0L 0L 0L (-1L)
let const c = make (Int64.lognot c) c c c
let range lo hi = make 0L 0L lo hi
let of_width w = if w >= 64 then top else if w <= 0 then const 0L else range 0L (Bits.mask w)
let is_bot v = v = Bot

let is_const = function
  | Bot -> None
  | V { lo; hi; _ } -> if lo = hi then Some lo else None

let known_zeros = function Bot -> -1L | V { zeros; _ } -> zeros
let known_ones = function Bot -> 0L | V { ones; _ } -> ones

let contains v c =
  match v with
  | Bot -> false
  | V { zeros; ones; lo; hi } ->
    Int64.logand c zeros = 0L
    && Int64.logand c ones = ones
    && Bits.ule lo c && Bits.ule c hi

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | V a, V b ->
    make (Int64.logand a.zeros b.zeros) (Int64.logand a.ones b.ones) (umin a.lo b.lo)
      (umax a.hi b.hi)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b ->
    make (Int64.logor a.zeros b.zeros) (Int64.logor a.ones b.ones) (umax a.lo b.lo)
      (umin a.hi b.hi)

(* Smallest all-ones value >=u v: the widening ladder. *)
let next_mask v = if v = 0L then 0L else Bits.mask (sigbits v)

(* [widen old new_] over-approximates [join old new_] and guarantees
   convergence: the interval's hi climbs the 2^k-1 ladder and lo drops
   straight to 0, while the known-bits half just intersects (finite
   height, no widening needed). *)
let widen a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | V a, V b ->
    let lo = if Bits.ult b.lo a.lo then 0L else a.lo in
    let hi = if Bits.ult a.hi b.hi then next_mask b.hi else a.hi in
    make (Int64.logand a.zeros b.zeros) (Int64.logand a.ones b.ones) lo hi

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | V a, V b ->
    Int64.logand b.zeros (Int64.lognot a.zeros) = 0L
    && Int64.logand b.ones (Int64.lognot a.ones) = 0L
    && Bits.ule b.lo a.lo && Bits.ule a.hi b.hi

(* Two sound approximations of the same concrete value must share at least
   one concrete member; disjoint approximations prove a semantic change. *)
let comparable a b = leq a b || leq b a

let to_string = function
  | Bot -> "bot"
  | V { zeros; ones; lo; hi } ->
    if lo = hi then Printf.sprintf "{%Lu}" lo
    else
      Printf.sprintf "[%Lu,%Lu]%s" lo hi
        (if zeros = Int64.lognot (Bits.mask (sigbits hi)) && ones = 0L then ""
         else Printf.sprintf " bits(z=%Lx,o=%Lx)" zeros ones)

(* --- transfer functions ---------------------------------------------------- *)

let bool_unknown = make (Int64.lognot 1L) 0L 0L 1L
let of_bool b = const (if b then 1L else 0L)

(* Decide a comparison from the interval/bits halves; [None] = unknown.
   All decisions are made in unsigned terms; for signed comparisons we
   only decide when both operands are provably non-negative (bit 63
   known-zero), where the orders coincide. *)
let decide_cmp op ~signed a b =
  match (a, b) with
  | Bot, _ | _, Bot -> None
  | V va, V vb ->
    let nonneg v = Bits.bit v.zeros 63 in
    if signed && not (nonneg va && nonneg vb) then None
    else begin
      let always_lt = Bits.ult va.hi vb.lo in
      let always_le = Bits.ule va.hi vb.lo in
      let never_lt = Bits.ule vb.hi va.lo in
      let never_le = Bits.ult vb.hi va.lo in
      let disjoint =
        Bits.ult va.hi vb.lo || Bits.ult vb.hi va.lo
        || Int64.logand va.ones vb.zeros <> 0L
        || Int64.logand va.zeros vb.ones <> 0L
      in
      match op with
      | Ast.Eq -> (
        match (is_const (V va), is_const (V vb)) with
        | Some x, Some y -> Some (x = y)
        | _ -> if disjoint then Some false else None)
      | Ast.Ne -> (
        match (is_const (V va), is_const (V vb)) with
        | Some x, Some y -> Some (x <> y)
        | _ -> if disjoint then Some true else None)
      | Ast.Lt -> if always_lt then Some true else if never_lt then Some false else None
      | Ast.Le -> if always_le then Some true else if never_le then Some false else None
      | Ast.Gt -> if Bits.ult vb.hi va.lo then Some true else if Bits.ule va.hi vb.lo then Some false else None
      | Ast.Ge -> if Bits.ule vb.hi va.lo then Some true else if Bits.ult va.hi vb.lo then Some false else None
      | _ -> None
    end

let binary op ~signed a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V va, V vb -> (
    match (is_const a, is_const b, op) with
    (* Exact evaluation through the shared concrete semantics whenever both
       operands are singletons (Land/Lor never reach the SSA). *)
    | Some x, Some y, (Ast.Land | Ast.Lor) ->
      of_bool ((x <> 0L && y <> 0L) || (op = Ast.Lor && (x <> 0L || y <> 0L)))
    | Some x, Some y, _ -> const (Eval.binop op ~signed x y)
    | _ -> (
      match op with
      | Ast.Add ->
        let lo = Int64.add va.lo vb.lo and hi = Int64.add va.hi vb.hi in
        if Bits.ult lo va.lo || Bits.ult hi va.hi then top else range lo hi
      | Ast.Sub ->
        if Bits.ule vb.hi va.lo then range (Int64.sub va.lo vb.hi) (Int64.sub va.hi vb.lo)
        else top
      | Ast.Mul ->
        if Bits.ule va.hi 0xFFFFFFFFL && Bits.ule vb.hi 0xFFFFFFFFL then
          range (Int64.mul va.lo vb.lo) (Int64.mul va.hi vb.hi)
        else top
      | Ast.Div ->
        if signed then top
        else
          (* Eval's semantics: division by zero yields 0. *)
          let lo = if contains b 0L then 0L else Bits.udiv va.lo vb.hi in
          range lo (Bits.udiv va.hi (umax vb.lo 1L))
      | Ast.Rem ->
        if signed then top
        else if vb.hi = 0L then a (* x rem 0 = x in Eval *)
        else
          let hi_r = umin va.hi (Int64.sub vb.hi 1L) in
          range 0L (if contains b 0L then umax va.hi hi_r else hi_r)
      | Ast.And ->
        make (Int64.logor va.zeros vb.zeros) (Int64.logand va.ones vb.ones) 0L
          (umin va.hi vb.hi)
      | Ast.Or ->
        make (Int64.logand va.zeros vb.zeros) (Int64.logor va.ones vb.ones)
          (umax va.lo vb.lo)
          (Bits.mask (max (sigbits va.hi) (sigbits vb.hi)))
      | Ast.Xor ->
        make
          (Int64.logor (Int64.logand va.zeros vb.zeros) (Int64.logand va.ones vb.ones))
          (Int64.logor (Int64.logand va.zeros vb.ones) (Int64.logand va.ones vb.zeros))
          0L
          (Bits.mask (max (sigbits va.hi) (sigbits vb.hi)))
      | Ast.Shl -> (
        match is_const b with
        | Some k ->
          let k = Int64.to_int (Int64.logand k 63L) in
          let zeros = Int64.logor (Int64.shift_left va.zeros k) (Bits.mask k) in
          let ones = Int64.shift_left va.ones k in
          if va.hi = 0L || sigbits va.hi + k <= 64 then
            make zeros ones (Bits.shl va.lo k) (Bits.shl va.hi k)
          else make zeros ones 0L (-1L)
        | None -> top)
      | Ast.Shr when not signed -> (
        match is_const b with
        | Some k ->
          let k = Int64.to_int (Int64.logand k 63L) in
          let zeros =
            Int64.logor (Bits.shr va.zeros k)
              (if k = 0 then 0L else Int64.shift_left (Bits.mask k) (64 - k))
          in
          make zeros (Bits.shr va.ones k) (Bits.shr va.lo k) (Bits.shr va.hi k)
        | None -> range 0L va.hi)
      | Ast.Shr (* signed *) -> (
        match is_const b with
        | Some k when Bits.bit va.zeros 63 ->
          (* Provably non-negative: arithmetic = logical shift. *)
          let k = Int64.to_int (Int64.logand k 63L) in
          let zeros =
            Int64.logor (Bits.shr va.zeros k)
              (if k = 0 then 0L else Int64.shift_left (Bits.mask k) (64 - k))
          in
          make zeros (Bits.shr va.ones k) (Bits.shr va.lo k) (Bits.shr va.hi k)
        | _ -> top)
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
        match decide_cmp op ~signed a b with
        | Some r -> of_bool r
        | None -> bool_unknown)
      | Ast.Land | Ast.Lor -> bool_unknown))

let unary op a =
  match a with
  | Bot -> Bot
  | V va -> (
    match is_const a with
    | Some x -> const (Eval.unop op x)
    | None -> (
      match op with
      | Ast.Neg -> top
      | Ast.Not -> make va.ones va.zeros (Int64.lognot va.hi) (Int64.lognot va.lo)
      | Ast.Lnot ->
        if not (contains a 0L) then const 0L
        else bool_unknown))

let normalize ~bits ~signed a =
  match a with
  | Bot -> Bot
  | V va ->
    if bits >= 64 then a
    else if not signed then
      let m = Bits.mask bits in
      if Bits.ule va.hi m then a
      else
        make
          (Int64.logor va.zeros (Int64.lognot m))
          (Int64.logand va.ones m) 0L m
    else begin
      (* Sign extension of the low [bits] bits. *)
      let m = Bits.mask bits in
      if Bits.bit va.zeros (bits - 1) then begin
        (* Sign bit known clear: sext = zext of the low bits. *)
        if Bits.ule va.hi (Bits.mask (bits - 1)) then a
        else
          make
            (Int64.logor (Int64.logand va.zeros m) (Int64.lognot m))
            (Int64.logand va.ones m) 0L
            (Bits.mask (bits - 1))
      end
      else if Bits.bit va.ones (bits - 1) then
        (* Sign bit known set: high bits all become ones. *)
        make (Int64.logand va.zeros m)
          (Int64.logor (Int64.logand va.ones m) (Int64.lognot m))
          0L (-1L)
      else
        make
          (Int64.logand va.zeros (Bits.mask (bits - 1)))
          (Int64.logand va.ones (Bits.mask (bits - 1)))
          0L (-1L)
    end

(* Width bound (in significant unsigned bits) of intrinsic results; shared
   with the optimizer's width analysis so both layers assume identical
   facts about builtins. *)
let intrinsic_width = function
  | "add_flags64" | "add_flags32" | "logic_flags64" | "logic_flags32" | "fp64_cmp_flags"
  | "fp32_cmp_flags" ->
    4
  | "clz32" | "clz64" | "popcount64" -> 7
  | "udiv32" | "ror32" | "rbit32" | "rev32" | "adc32" | "fp32_add" | "fp32_sub" | "fp32_mul"
  | "fp32_div" | "fp32_sqrt" | "fp32_min" | "fp32_max" | "fp64_to_fp32" | "fp32_to_sint32"
  | "sint32_to_fp32" | "sint64_to_fp32" ->
    32
  | "rev16" -> 16
  | _ -> 64

let is_pure_builtin name =
  match Adl.Builtins.find name with
  | Some { Adl.Builtins.bi_kind = Adl.Builtins.Pure; _ } -> true
  | _ -> false

let intrinsic name args =
  if List.exists is_bot args then Bot
  else
    let consts = List.map is_const args in
    if is_pure_builtin name && List.for_all Option.is_some consts then
      match Eval.builtin name (List.map Option.get consts) with
      | Some v -> const v
      | None -> of_width (intrinsic_width name)
    else of_width (intrinsic_width name)

(* --- the fixpoint engine --------------------------------------------------- *)

type verdict = Always | Never | Unknown

type summary = {
  values : (Ir.id, t) Hashtbl.t;
  reached : (int, unit) Hashtbl.t;
  verdicts : (int, verdict) Hashtbl.t; (* block id -> branch verdict *)
}

let value s id = match Hashtbl.find_opt s.values id with Some v -> v | None -> Bot
let block_reachable s bid = Hashtbl.mem s.reached bid
let branch_verdict s bid =
  match Hashtbl.find_opt s.verdicts bid with Some v -> v | None -> Unknown

(* Reverse postorder over the CFG, and the set of DFS back-edge targets
   (loop heads, where widening applies). *)
let rpo_and_loop_heads (action : Ir.action) =
  let state = Hashtbl.create 16 in (* 1 = on stack, 2 = done *)
  let heads = Hashtbl.create 4 in
  let order = ref [] in
  let rec visit bid =
    match Hashtbl.find_opt state bid with
    | Some 1 -> Hashtbl.replace heads bid ()
    | Some _ -> ()
    | None ->
      Hashtbl.replace state bid 1;
      let b = Ir.find_block action bid in
      List.iter visit (Ir.successors b);
      Hashtbl.replace state bid 2;
      order := bid :: !order
  in
  (match action.Ir.blocks with [] -> () | b :: _ -> visit b.Ir.bid);
  (!order, heads)

(* Refine [v]'s interval for the given comparison outcome against [bound]. *)
let refine_var_by_cmp op ~outcome v bound =
  match (v, bound) with
  | Bot, _ | _, Bot -> Bot
  | V _, V vb -> (
    (* Normalize to one of: v < k, v <= k, v > k, v >= k, v = b. *)
    let lt_hi k = if k = 0L then Bot else meet v (range 0L (Int64.sub k 1L)) in
    let le_hi k = meet v (range 0L k) in
    let ge_lo k = meet v (range k (-1L)) in
    let gt_lo k = if k = -1L then Bot else meet v (range (Int64.add k 1L) (-1L)) in
    match (op, outcome) with
    | Ast.Lt, true -> lt_hi vb.hi
    | Ast.Lt, false -> ge_lo vb.lo
    | Ast.Le, true -> le_hi vb.hi
    | Ast.Le, false -> gt_lo vb.lo
    | Ast.Gt, true -> gt_lo vb.lo
    | Ast.Gt, false -> le_hi vb.hi
    | Ast.Ge, true -> ge_lo vb.lo
    | Ast.Ge, false -> lt_hi vb.hi
    | Ast.Eq, true -> meet v bound
    | Ast.Ne, false -> meet v bound
    | _ -> v)

let analyze ?(ctx = no_ctx) (action : Ir.action) : summary =
  let nvars = action.Ir.next_var in
  let values : (Ir.id, t) Hashtbl.t = Hashtbl.create 64 in
  let value_of id = match Hashtbl.find_opt values id with Some v -> v | None -> top in
  let instates : (int, t array) Hashtbl.t = Hashtbl.create 8 in
  let visits : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let order, heads = rpo_and_loop_heads action in
  let defs = Hashtbl.create 64 in
  List.iter
    (fun b -> List.iter (fun i -> Hashtbl.replace defs i.Ir.id i.Ir.desc) b.Ir.insts)
    action.Ir.blocks;
  let changed = ref false in
  (* Merge an edge's variable state into [target]'s in-state. *)
  let flow target (vars : t array) =
    match Hashtbl.find_opt instates target with
    | None ->
      Hashtbl.replace instates target (Array.copy vars);
      changed := true
    | Some cur ->
      let vcount = (Hashtbl.find_opt visits target |> Option.value ~default:0) + 1 in
      Hashtbl.replace visits target vcount;
      let op = if Hashtbl.mem heads target && vcount > 2 then widen else join in
      for v = 0 to nvars - 1 do
        let merged = op cur.(v) vars.(v) in
        if merged <> cur.(v) then begin
          cur.(v) <- merged;
          changed := true
        end
      done
  in
  let eval_desc (vars : t array) desc =
    match desc with
    | Ir.Const c -> const c
    | Ir.Struct f -> (
      match List.assoc_opt f ctx.field_widths with Some w -> of_width w | None -> top)
    | Ir.Binary (op, signed, a, b) -> binary op ~signed (value_of a) (value_of b)
    | Ir.Unary (op, a) -> unary op (value_of a)
    | Ir.Normalize (w, signed, a) -> normalize ~bits:w ~signed (value_of a)
    | Ir.Select (c, t, f) ->
      let vc = value_of c in
      if is_bot vc then Bot
      else if not (contains vc 0L) then value_of t
      else if is_const vc = Some 0L then value_of f
      else join (value_of t) (value_of f)
    | Ir.Bank_read (bank, _) -> (
      match List.assoc_opt bank ctx.bank_widths with Some w -> of_width w | None -> top)
    | Ir.Reg_read slot -> (
      match List.assoc_opt slot ctx.slot_widths with Some w -> of_width w | None -> top)
    | Ir.Var_read v -> if v >= 0 && v < nvars then vars.(v) else top
    | Ir.Mem_read (w, _) -> of_width w
    | Ir.Pc_read -> top
    | Ir.Coproc_read _ -> top
    | Ir.Intrinsic (name, args) -> intrinsic name (List.map value_of args)
    | Ir.Phi arms ->
      List.fold_left
        (fun acc (pred, x) ->
          if Hashtbl.mem instates pred then join acc (value_of x) else acc)
        Bot arms
    | Ir.Bank_write _ | Ir.Reg_write _ | Ir.Var_write _ | Ir.Mem_write _ | Ir.Pc_write _
    | Ir.Coproc_write _ | Ir.Effect _ ->
      top
  in
  (* Transfer one block: returns the out-state and the set of still-fresh
     Var_read ids (read id, var) usable for branch-edge refinement. *)
  let transfer (b : Ir.block) (in_vars : t array) =
    let vars = Array.copy in_vars in
    let fresh_reads = ref [] in
    List.iter
      (fun (i : Ir.inst) ->
        let v = eval_desc vars i.Ir.desc in
        if Ir.produces_value i.Ir.desc then Hashtbl.replace values i.Ir.id v;
        match i.Ir.desc with
        | Ir.Var_write (x, src) ->
          if x >= 0 && x < nvars then vars.(x) <- value_of src;
          fresh_reads := List.filter (fun (_, var) -> var <> x) !fresh_reads
        | Ir.Var_read x -> if x >= 0 && x < nvars then fresh_reads := (i.Ir.id, x) :: !fresh_reads
        | _ -> ())
      b.Ir.insts;
    (vars, !fresh_reads)
  in
  (* Seed the entry block: variables read before any write yield 0 in the
     concrete interpreter, so they start as the {0} singleton. *)
  (match action.Ir.blocks with
  | [] -> ()
  | entry :: _ -> Hashtbl.replace instates entry.Ir.bid (Array.make nvars (const 0L)));
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr rounds;
    if !rounds > 1000 then
      invalid_arg (Printf.sprintf "Absint.analyze: no fixpoint in %s" action.Ir.name);
    changed := false;
    List.iter
      (fun bid ->
        match Hashtbl.find_opt instates bid with
        | None -> ()
        | Some in_vars -> (
          let b = Ir.find_block action bid in
          let out_vars, fresh_reads = transfer b in_vars in
          match b.Ir.term with
          | Ir.Ret -> ()
          | Ir.Jump t -> flow t out_vars
          | Ir.Branch (c, t, f) ->
            let vc = value_of c in
            (* On each feasible edge, refine variables whose fresh read
               feeds an unsigned comparison condition. *)
            let refined outcome =
              let vars = Array.copy out_vars in
              (match Hashtbl.find_opt defs c with
              | Some (Ir.Binary (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op), false, x, y)) ->
                let refine_side id other_v op' =
                  match List.assoc_opt id fresh_reads with
                  | Some var -> vars.(var) <- refine_var_by_cmp op' ~outcome vars.(var) other_v
                  | None -> ()
                in
                let swap = function
                  | Ast.Lt -> Ast.Gt | Ast.Le -> Ast.Ge | Ast.Gt -> Ast.Lt | Ast.Ge -> Ast.Le
                  | o -> o
                in
                refine_side x (value_of y) op;
                refine_side y (value_of x) (swap op)
              | _ -> ());
              vars
            in
            if is_bot vc then ()
            else begin
              if contains vc 0L then flow f (refined false);
              if is_const vc <> Some 0L then flow t (refined true)
            end))
      order;
    continue_ := !changed
  done;
  (* Final verdicts and reachability. *)
  let reached = Hashtbl.create 8 in
  Hashtbl.iter (fun bid _ -> Hashtbl.replace reached bid ()) instates;
  let verdicts = Hashtbl.create 8 in
  List.iter
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Branch (c, _, _) when Hashtbl.mem reached b.Ir.bid ->
        let vc = match Hashtbl.find_opt values c with Some v -> v | None -> top in
        let v =
          if is_const vc = Some 0L then Never
          else if (not (is_bot vc)) && not (contains vc 0L) then Always
          else Unknown
        in
        Hashtbl.replace verdicts b.Ir.bid v
      | _ -> ())
    action.Ir.blocks;
  { values; reached; verdicts }

(* --- findings (validator and range checker) -------------------------------- *)

type finding = { f_action : string; f_stmt : Ir.id option; f_block : int option; f_msg : string }

let string_of_finding f =
  Printf.sprintf "%s%s%s: %s" f.f_action
    (match f.f_block with Some b -> Printf.sprintf " b_%d" b | None -> "")
    (match f.f_stmt with Some s -> Printf.sprintf " s_%d" s | None -> "")
    f.f_msg

(* Structural identity of an effectful statement up to operand ids: a pass
   may rewrite operands (to equal values) but must not change what state
   the statement touches. *)
let same_shape d1 d2 =
  match (d1, d2) with
  | Ir.Bank_write (b1, _, _), Ir.Bank_write (b2, _, _) -> b1 = b2
  | Ir.Reg_write (r1, _), Ir.Reg_write (r2, _) -> r1 = r2
  | Ir.Var_write (v1, _), Ir.Var_write (v2, _) -> v1 = v2
  | Ir.Mem_write (w1, _, _), Ir.Mem_write (w2, _, _) -> w1 = w2
  | Ir.Pc_write _, Ir.Pc_write _ -> true
  | Ir.Coproc_write _, Ir.Coproc_write _ -> true
  | Ir.Effect (n1, a1), Ir.Effect (n2, a2) -> n1 = n2 && List.length a1 = List.length a2
  | _ -> false

(* Translation validation: compare the optimized action against its
   unoptimized reference statement-by-statement.  Pass pipeline invariant:
   statement ids are never renumbered (passes remove statements and
   rewrite operands in place), so a surviving id denotes the same program
   point in both forms.  For every surviving value-producing statement the
   two abstract results must be *comparable* (one contains the other);
   for every surviving effectful statement the shapes must match and the
   operands' abstract values must be pairwise comparable.  Incomparable
   (disjoint) approximations of the same statement prove the optimizer
   changed its semantics. *)
let validate ?(ctx = no_ctx) ?ref_summary ?opt_summary ~reference ~optimized () =
  let s_ref = match ref_summary with Some s -> s | None -> analyze ~ctx reference in
  let s_opt = match opt_summary with Some s -> s | None -> analyze ~ctx optimized in
  let ref_descs = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter (fun (i : Ir.inst) -> Hashtbl.replace ref_descs i.Ir.id i.Ir.desc) b.Ir.insts)
    reference.Ir.blocks;
  let findings = ref [] in
  let add ?stmt ?block msg =
    findings :=
      { f_action = optimized.Ir.name; f_stmt = stmt; f_block = block; f_msg = msg } :: !findings
  in
  let compared = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      if block_reachable s_opt b.Ir.bid then
        List.iter
          (fun (i : Ir.inst) ->
            match Hashtbl.find_opt ref_descs i.Ir.id with
            | None ->
              add ~stmt:i.Ir.id ~block:b.Ir.bid
                "statement not present in the unoptimized reference"
            | Some rdesc ->
              incr compared;
              if Ir.produces_value i.Ir.desc then begin
                let vr = value s_ref i.Ir.id and vo = value s_opt i.Ir.id in
                if not (comparable vr vo) then
                  add ~stmt:i.Ir.id ~block:b.Ir.bid
                    (Printf.sprintf "incomparable abstract results: %s (reference) vs %s (optimized)"
                       (to_string vr) (to_string vo))
              end
              else begin
                if not (same_shape rdesc i.Ir.desc) then
                  add ~stmt:i.Ir.id ~block:b.Ir.bid
                    "effectful statement changed shape under optimization"
                else
                  List.iter2
                    (fun oref oopt ->
                      let vr = value s_ref oref and vo = value s_opt oopt in
                      if not (comparable vr vo) then
                        add ~stmt:i.Ir.id ~block:b.Ir.bid
                          (Printf.sprintf
                             "incomparable operand: s_%d %s (reference) vs s_%d %s (optimized)"
                             oref (to_string vr) oopt (to_string vo)))
                    (Ir.operands rdesc) (Ir.operands i.Ir.desc)
              end)
          b.Ir.insts)
    optimized.Ir.blocks;
  (List.rev !findings, !compared)

(* Out-of-range access checker: every bank index must be provably within
   the declared element count, and every slot access must name a declared
   slot.  Statements in unreachable blocks are vacuously in range. *)
let check_ranges ?(ctx = no_ctx) ?summary (action : Ir.action) =
  let s = match summary with Some s -> s | None -> analyze ~ctx action in
  let findings = ref [] in
  let checked = ref 0 in
  let add ?stmt ?block msg =
    findings := { f_action = action.Ir.name; f_stmt = stmt; f_block = block; f_msg = msg } :: !findings
  in
  let check_bank bid stmt bank idx =
    match List.assoc_opt bank ctx.bank_counts with
    | None ->
      if ctx.bank_counts <> [] then
        add ~stmt ~block:bid (Printf.sprintf "access to undeclared bank %d" bank)
    | Some count ->
      incr checked;
      let v = value s idx in
      if not (leq v (range 0L (Int64.of_int (count - 1)))) then
        add ~stmt ~block:bid
          (Printf.sprintf "bank %d index %s not provably within [0,%d)" bank (to_string v) count)
  in
  let check_slot bid stmt slot =
    if ctx.slot_indices <> [] then begin
      incr checked;
      if not (List.mem slot ctx.slot_indices) then
        add ~stmt ~block:bid (Printf.sprintf "access to undeclared slot %d" slot)
    end
  in
  List.iter
    (fun (b : Ir.block) ->
      if block_reachable s b.Ir.bid then
        List.iter
          (fun (i : Ir.inst) ->
            match i.Ir.desc with
            | Ir.Bank_read (bank, idx) -> check_bank b.Ir.bid i.Ir.id bank idx
            | Ir.Bank_write (bank, idx, _) -> check_bank b.Ir.bid i.Ir.id bank idx
            | Ir.Reg_read slot | Ir.Reg_write (slot, _) -> check_slot b.Ir.bid i.Ir.id slot
            | _ -> ())
          b.Ir.insts)
    action.Ir.blocks;
  (List.rev !findings, !checked)

(* --- the absint-simplify pass body ----------------------------------------- *)

type simplify_stats = {
  mutable branches_folded : int;
  mutable stmts_folded : int;
  mutable masks_dropped : int;
}

let simplify_stats = { branches_folded = 0; stmts_folded = 0; masks_dropped = 0 }

let reset_simplify_stats () =
  simplify_stats.branches_folded <- 0;
  simplify_stats.stmts_folded <- 0;
  simplify_stats.masks_dropped <- 0

(* Analysis-driven simplification (registered as the O3 pass
   `absint-simplify` in {!Opt.passes}):
   - statements whose abstract result is a singleton become constants
     (strictly stronger than local constant folding: facts flow through
     field seeds, selects, variable states and comparisons);
   - masks and normalizations proved redundant by known-bits are dropped
     (aliased to their operand, where value propagation only reasons
     about a local width bound);
   - branches with an Always/Never verdict become jumps, with stale phi
     arms on the abandoned edge pruned.
   [replace_uses] is passed in by {!Opt} to avoid a dependency cycle. *)
let simplify ~replace_uses ctx (action : Ir.action) =
  let s = analyze ~ctx action in
  let changed = ref false in
  let foldable = function
    | Ir.Const _ -> false (* already folded *)
    | Ir.Struct _ -> false (* fields are per-instance, not per-class *)
    | Ir.Binary _ | Ir.Unary _ | Ir.Normalize _ | Ir.Select _ | Ir.Var_read _ | Ir.Phi _ -> true
    | Ir.Intrinsic (name, _) -> is_pure_builtin name
    | _ -> false
  in
  List.iter
    (fun (b : Ir.block) ->
      if block_reachable s b.Ir.bid then
        List.iter
          (fun (i : Ir.inst) ->
            let aval op = value s op in
            match i.Ir.desc with
            (* Fully-known result: rewrite to a constant. *)
            | d when foldable d && is_const (value s i.Ir.id) <> None ->
              let v = Option.get (is_const (value s i.Ir.id)) in
              i.Ir.desc <- Ir.Const v;
              simplify_stats.stmts_folded <- simplify_stats.stmts_folded + 1;
              changed := true
            (* Redundant mask: every possibly-set bit of [a] is kept. *)
            | Ir.Binary (Ast.And, _, a, m)
              when (match is_const (aval m) with
                   | Some mv -> Int64.logand (Int64.lognot (known_zeros (aval a))) (Int64.lognot mv) = 0L
                   | None -> false) ->
              replace_uses action ~from:i.Ir.id ~to_:a;
              simplify_stats.masks_dropped <- simplify_stats.masks_dropped + 1;
              changed := true
            | Ir.Binary (Ast.And, _, m, a)
              when (match is_const (aval m) with
                   | Some mv -> Int64.logand (Int64.lognot (known_zeros (aval a))) (Int64.lognot mv) = 0L
                   | None -> false) ->
              replace_uses action ~from:i.Ir.id ~to_:a;
              simplify_stats.masks_dropped <- simplify_stats.masks_dropped + 1;
              changed := true
            (* Abstract identities: adding/oring/xoring/shifting a proved
               zero, even when the operand is not a literal constant. *)
            | Ir.Binary ((Ast.Add | Ast.Or | Ast.Xor | Ast.Shl | Ast.Shr | Ast.Sub), _, a, z)
              when is_const (aval z) = Some 0L ->
              replace_uses action ~from:i.Ir.id ~to_:a;
              simplify_stats.stmts_folded <- simplify_stats.stmts_folded + 1;
              changed := true
            | Ir.Binary ((Ast.Add | Ast.Or | Ast.Xor), _, z, a)
              when is_const (aval z) = Some 0L ->
              replace_uses action ~from:i.Ir.id ~to_:a;
              simplify_stats.stmts_folded <- simplify_stats.stmts_folded + 1;
              changed := true
            (* A truncation that provably cannot change the value. *)
            | Ir.Normalize (w, false, a) when w < 64 && leq (aval a) (of_width w) ->
              replace_uses action ~from:i.Ir.id ~to_:a;
              simplify_stats.masks_dropped <- simplify_stats.masks_dropped + 1;
              changed := true
            (* A sign extension of a value proved to fit in bits-1. *)
            | Ir.Normalize (w, true, a)
              when w > 1 && w < 64 && leq (aval a) (of_width (w - 1)) ->
              replace_uses action ~from:i.Ir.id ~to_:a;
              simplify_stats.masks_dropped <- simplify_stats.masks_dropped + 1;
              changed := true
            (* A select whose condition is decided. *)
            | Ir.Select (c, t, f) when is_const (aval c) <> None || not (contains (aval c) 0L) ->
              let target = if is_const (aval c) = Some 0L then f else t in
              replace_uses action ~from:i.Ir.id ~to_:target;
              simplify_stats.stmts_folded <- simplify_stats.stmts_folded + 1;
              changed := true
            | _ -> ())
          b.Ir.insts)
    action.Ir.blocks;
  (* Fold decided branches.  The abandoned target may keep other
     predecessors, so only its phi arms for *this* edge are pruned. *)
  List.iter
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Branch (_, t, f) when t <> f -> (
        let fold keep drop =
          b.Ir.term <- Ir.Jump keep;
          (match List.find_opt (fun blk -> blk.Ir.bid = drop) action.Ir.blocks with
          | Some dropped when drop <> keep ->
            List.iter
              (fun (i : Ir.inst) ->
                match i.Ir.desc with
                | Ir.Phi arms ->
                  i.Ir.desc <- Ir.Phi (List.filter (fun (p, _) -> p <> b.Ir.bid) arms)
                | _ -> ())
              dropped.Ir.insts
          | _ -> ());
          simplify_stats.branches_folded <- simplify_stats.branches_folded + 1;
          changed := true
        in
        match branch_verdict s b.Ir.bid with
        | Always -> fold t f
        | Never -> fold f t
        | Unknown -> ())
      | _ -> ())
    action.Ir.blocks;
  !changed
