(* Direct interpreter for SSA actions.

   Serves two purposes: it is the oracle for optimizer-correctness property
   tests (an optimized action must behave exactly like the unoptimized
   one), and it powers the reference interpreter that the full DBT engines
   are differentially tested against. *)

module Eval = Adl.Eval

(* Callbacks onto the guest machine state. *)
type state = {
  bank_read : int -> int -> int64;
  bank_write : int -> int -> int64 -> unit;
  reg_read : int -> int64;
  reg_write : int -> int64 -> unit;
  pc_read : unit -> int64;
  pc_write : int64 -> unit;
  mem_read : int -> int64 -> int64; (* width bits, address *)
  mem_write : int -> int64 -> int64 -> unit;
  coproc_read : int64 -> int64;
  coproc_write : int64 -> int64 -> unit;
  effect : string -> int64 list -> unit;
}

exception Stop (* raised by state.effect for terminating effects *)

let run ?trace (st : state) (action : Ir.action) ~(field : string -> int64) =
  let env : (Ir.id, int64) Hashtbl.t = Hashtbl.create 64 in
  let vars : (int, int64) Hashtbl.t = Hashtbl.create 8 in
  let get id =
    try Hashtbl.find env id
    with Not_found ->
      invalid_arg (Printf.sprintf "Interp: use of undefined value s_%d in %s" id action.Ir.name)
  in
  let set id v =
    (match trace with Some f -> f id v | None -> ());
    Hashtbl.replace env id v
  in
  let exec (i : Ir.inst) =
    match i.Ir.desc with
    | Ir.Const c -> set i.Ir.id c
    | Ir.Struct f -> set i.Ir.id (field f)
    | Ir.Binary (op, signed, a, b) -> set i.Ir.id (Eval.binop op ~signed (get a) (get b))
    | Ir.Unary (op, a) -> set i.Ir.id (Eval.unop op (get a))
    | Ir.Normalize (bits, signed, a) ->
      set i.Ir.id (Eval.normalize (Adl.Ast.Tint { bits; signed }) (get a))
    | Ir.Select (c, t, f) -> set i.Ir.id (if get c <> 0L then get t else get f)
    | Ir.Intrinsic (name, args) -> (
      match Eval.builtin name (List.map get args) with
      | Some v -> set i.Ir.id v
      | None -> invalid_arg (Printf.sprintf "uninterpretable intrinsic %S" name))
    | Ir.Bank_read (bank, idx) -> set i.Ir.id (st.bank_read bank (Int64.to_int (get idx)))
    | Ir.Bank_write (bank, idx, v) -> st.bank_write bank (Int64.to_int (get idx)) (get v)
    | Ir.Reg_read slot -> set i.Ir.id (st.reg_read slot)
    | Ir.Reg_write (slot, v) -> st.reg_write slot (get v)
    | Ir.Var_read v -> set i.Ir.id (try Hashtbl.find vars v with Not_found -> 0L)
    | Ir.Var_write (v, x) -> Hashtbl.replace vars v (get x)
    | Ir.Mem_read (bits, a) -> set i.Ir.id (st.mem_read bits (get a))
    | Ir.Mem_write (bits, a, v) -> st.mem_write bits (get a) (get v)
    | Ir.Pc_read -> set i.Ir.id (st.pc_read ())
    | Ir.Pc_write v -> st.pc_write (get v)
    | Ir.Coproc_read idx -> set i.Ir.id (st.coproc_read (get idx))
    | Ir.Coproc_write (idx, v) -> st.coproc_write (get idx) (get v)
    | Ir.Effect (name, args) -> st.effect name (List.map get args)
    | Ir.Phi _ -> invalid_arg "phi node in interpreted action"
  in
  let fuel = ref 1_000_000 in
  let cur = ref (Some (Ir.entry_block action)) in
  (try
     while !cur <> None do
       let b = Option.get !cur in
       decr fuel;
       if !fuel <= 0 then invalid_arg "interpreted action did not terminate";
       List.iter exec b.Ir.insts;
       match b.Ir.term with
       | Ir.Ret -> cur := None
       | Ir.Jump t -> cur := Some (Ir.find_block action t)
       | Ir.Branch (c, t, f) ->
         cur := Some (Ir.find_block action (if get c <> 0L then t else f))
     done
   with Stop -> ());
  ()
