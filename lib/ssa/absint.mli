(** Forward abstract interpretation over SSA actions.

    The domain is a product of known-bits (per-bit 0/1/unknown) and
    unsigned intervals, with the two halves refining each other.
    Decode-instruction fields are seeded from the architecture context
    (a field of width [w] starts as [[0, 2^w-1]] with the high bits
    known-zero), so proofs hold for every decoding of the instruction
    class.  Widening at loop heads climbs the [2^k-1] ladder, keeping
    loop analysis convergent while preserving width facts.

    Consumers: the O3 [absint-simplify] pass body ({!simplify}), the
    per-action translation validator ({!validate}) and the out-of-range
    access checker ({!check_ranges}); all three are wired into
    [captive_run lint]. *)

(** Architecture facts consumed by the analysis.  {!Opt.context} is a
    re-export of this type, constructed by [Offline.opt_context]. *)
type ctx = {
  field_widths : (string * int) list;  (** decode-pattern field widths *)
  bank_widths : (int * int) list;  (** bank index -> element width *)
  slot_widths : (int * int) list;
  bank_counts : (int * int) list;  (** bank index -> number of elements *)
  slot_indices : int list;  (** declared register slot indices *)
}

val no_ctx : ctx

(** {1 The abstract value lattice} *)

(** An abstract set of 64-bit values: bottom (no value) or the product
    of a known-bits mask pair and an unsigned interval. *)
type t

val bot : t
val top : t

val const : int64 -> t

(** [range lo hi] is the unsigned interval [lo..hi]. *)
val range : int64 -> int64 -> t

(** [of_width w]: all values representable in [w] unsigned bits. *)
val of_width : int -> t

val is_bot : t -> bool

(** [Some c] iff the abstraction is the singleton [{c}]. *)
val is_const : t -> int64 option

(** Mask of bits proved zero (all-ones for bottom). *)
val known_zeros : t -> int64

(** Mask of bits proved one (zero for bottom). *)
val known_ones : t -> int64

(** Concretization membership: is the concrete value contained? *)
val contains : t -> int64 -> bool

val join : t -> t -> t
val meet : t -> t -> t

(** [widen old next] over-approximates [join old next] and guarantees
    convergence of ascending chains. *)
val widen : t -> t -> t

(** Lattice order: [leq a b] iff every value of [a] is a value of [b]. *)
val leq : t -> t -> bool

(** [comparable a b] iff one abstraction contains the other.  Two sound
    approximations of the same concrete value are always comparable in
    practice here; disjoint ones prove a semantic change. *)
val comparable : t -> t -> bool

val to_string : t -> string

(** {1 Transfer functions} (exposed for the property tests) *)

val binary : Adl.Ast.binop -> signed:bool -> t -> t -> t
val unary : Adl.Ast.unop -> t -> t
val normalize : bits:int -> signed:bool -> t -> t

(** Abstract result of a builtin call (exact when pure with singleton
    arguments, else bounded by {!intrinsic_width}). *)
val intrinsic : string -> t list -> t

(** Upper bound on the significant result bits of a builtin; shared with
    the optimizer's width analysis. *)
val intrinsic_width : string -> int

(** {1 Whole-action analysis} *)

type verdict = Always | Never | Unknown

(** The fixpoint result: per-statement abstract values, block
    reachability and branch verdicts. *)
type summary

(** Run the forward fixpoint over the action's CFG.
    @raise Invalid_argument if no fixpoint is reached (a bug). *)
val analyze : ?ctx:ctx -> Ir.action -> summary

(** Abstract value of a statement id (bottom if never reached). *)
val value : summary -> Ir.id -> t

val block_reachable : summary -> int -> bool

(** Verdict for the branch terminating the given block. *)
val branch_verdict : summary -> int -> verdict

(** {1 Findings} *)

type finding = {
  f_action : string;
  f_stmt : Ir.id option;
  f_block : int option;
  f_msg : string;
}

val string_of_finding : finding -> string

(** Translation validation of [optimized] against its unoptimized
    [reference] (statement ids are stable across the pass pipeline).
    Returns the findings plus the number of statements compared.
    Optional summaries avoid re-analysis when the caller already has
    them. *)
val validate :
  ?ctx:ctx ->
  ?ref_summary:summary ->
  ?opt_summary:summary ->
  reference:Ir.action ->
  optimized:Ir.action ->
  unit ->
  finding list * int

(** Prove every bank index within the declared element count and every
    slot access against a declared slot.  Returns findings plus the
    number of accesses checked.  Accesses in unreachable blocks are
    vacuously in range; banks/slots absent from an empty context are
    skipped. *)
val check_ranges : ?ctx:ctx -> ?summary:summary -> Ir.action -> finding list * int

(** {1 The absint-simplify pass body} *)

type simplify_stats = {
  mutable branches_folded : int;
  mutable stmts_folded : int;
  mutable masks_dropped : int;
}

(** Cumulative counters for {!simplify} activity (reported by the lint
    driver's JSON output). *)
val simplify_stats : simplify_stats

val reset_simplify_stats : unit -> unit

(** One application of the analysis-driven simplification: fold
    fully-known statements to constants, drop provably redundant masks
    and extensions, and fold decided branches.  [replace_uses] is
    injected by {!Opt} (which registers this as the O3 pass
    [absint-simplify]) to avoid a module cycle. *)
val simplify :
  replace_uses:(Ir.action -> from:Ir.id -> to_:Ir.id -> unit) ->
  ctx ->
  Ir.action ->
  bool
