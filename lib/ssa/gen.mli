(** Generator functions: translation-time partial evaluation of optimized
    SSA (paper Sec. 2.2.3 and Fig. 7).

    Fixed operations (constants, decoded instruction fields, computation
    and control flow over them) are evaluated at translation time; dynamic
    operations are emitted through a backend {!Emitter.t}.  Instructions
    with fixed internal control flow translate along a single concrete
    path (fixed loops are unrolled); those with dynamic control flow (e.g.
    conditional branches over guest flags) are materialized into backend
    blocks with translation-time constants still folded. *)

type 'v value = Fixed of int64 | Dyn of 'v

(** Raised when a construct cannot be lowered (e.g. a dynamic
    register-bank index, or a fixed loop exceeding the unrolling fuel). *)
exception Unsupported of string

(** Probe (against the null emitter) whether this instruction instance's
    internal control flow is entirely fixed. *)
val has_fixed_control_flow : Ir.action -> field:(string -> int64) -> bool

(** Translate one decoded instruction through the backend.  [field]
    resolves instruction fields (including engine pseudo-fields such as
    [__el]); [inc_pc] is [Some size] when the decode entry does not end
    the block, in which case a PC increment is appended (paper Fig. 7:
    [if (!insn.end_of_block) emitter.inc_pc(4)]). *)
val translate : 'v Emitter.t -> Ir.action -> field:(string -> int64) -> inc_pc:int option -> unit

(** Translate each decoded instruction into its own freshly created
    backend — the reference oracle for translation validation: one
    unoptimized emission per instruction, with no cross-instruction
    memoization.  [fresh] supplies a new emitter plus a finalizer that
    extracts whatever the backend produced. *)
val translate_isolated :
  fresh:(unit -> 'v Emitter.t * (unit -> 'seg)) ->
  (Ir.action * (string -> int64) * int option) list ->
  'seg list
