(** SSA well-formedness checker.

    Checks the invariants every offline pass assumes: unique statement
    ids within the action's id range, def-before-use established by a
    dominance computation over the block CFG, phi arms matching the
    actual CFG predecessors (complete, duplicate-free, with each arm's
    value available at the end of its predecessor), terminator targets
    resolving to present blocks, operand uses referring only to
    value-producing statements, and variable reads/writes staying within
    the declared variable range.

    Unreachable blocks are not themselves violations (they appear
    legitimately between passes), but dominance-based ordering is only
    enforced over the reachable subgraph.

    [Opt.optimize ~verify:true] runs {!check_exn} after every pass so a
    broken pass is attributed by name. *)

type violation = {
  v_block : int option;  (** containing block, if any *)
  v_stmt : Ir.id option;  (** offending statement, if any *)
  v_msg : string;
}

exception
  Invalid of {
    action : string;
    phase : string;  (** the pass (or pipeline stage) that produced the IR *)
    violations : violation list;
  }

val string_of_violation : violation -> string

(** Multi-line report used by exceptions and the lint driver. *)
val report : action:string -> phase:string -> violation list -> string

(** All violations in the action, in program order; [[]] means
    well-formed.  Never mutates the action. *)
val check : Ir.action -> violation list

(** @raise Invalid with the given phase label if {!check} is non-empty. *)
val check_exn : ?phase:string -> Ir.action -> unit
