(* The domain-specific SSA form of the offline stage (paper Fig. 4/6).

   Statements are identified by integer ids; a statement that produces a
   value is referred to by its id.  Local variables of the behaviour
   language are *not* SSA values: they are accessed through Var_read /
   Var_write and only promoted to values by optimization (load coalescing
   locally; PHI analysis at O4), mirroring the paper's pipeline. *)

type id = int

type desc =
  | Const of int64
  | Struct of string (* read of a decoded-instruction field: always fixed *)
  | Binary of Adl.Ast.binop * bool (* signed *) * id * id
  | Unary of Adl.Ast.unop * id
  | Normalize of int * bool * id (* truncate/extend to width, signedness *)
  | Select of id * id * id
  | Bank_read of int * id
  | Bank_write of int * id * id
  | Reg_read of int
  | Reg_write of int * id
  | Var_read of int
  | Var_write of int * id
  | Mem_read of int * id (* width in bits *)
  | Mem_write of int * id * id (* width, addr, value *)
  | Pc_read
  | Pc_write of id
  | Coproc_read of id
  | Coproc_write of id * id
  | Intrinsic of string * id list (* pure builtins only *)
  | Effect of string * id list (* take_exception, tlb_flush, halt, ... *)
  | Phi of (int * id) list (* (predecessor block, value) *)

type term =
  | Jump of int
  | Branch of id * int * int (* condition, then-block, else-block *)
  | Ret

type inst = { id : id; mutable desc : desc }

type block = {
  bid : int;
  mutable insts : inst list; (* in execution order *)
  mutable term : term;
}

type action = {
  name : string;
  mutable blocks : block list; (* entry block first *)
  mutable next_id : int;
  mutable next_var : int;
  var_names : (int, string) Hashtbl.t;
}

let create_action name =
  { name; blocks = []; next_id = 0; next_var = 0; var_names = Hashtbl.create 8 }

let fresh_id action =
  let id = action.next_id in
  action.next_id <- id + 1;
  id

let fresh_var action name =
  let v = action.next_var in
  action.next_var <- v + 1;
  Hashtbl.replace action.var_names v name;
  v

let entry_block action = match action.blocks with [] -> invalid_arg "empty action" | b :: _ -> b

let find_block action bid =
  match List.find_opt (fun b -> b.bid = bid) action.blocks with
  | Some b -> b
  | None ->
    invalid_arg
      (Printf.sprintf "Ir.find_block: action %s has no block b_%d (blocks: %s)" action.name bid
         (String.concat " " (List.map (fun b -> Printf.sprintf "b_%d" b.bid) action.blocks)))

(* Does the statement produce a value? *)
let produces_value = function
  | Const _ | Struct _ | Binary _ | Unary _ | Normalize _ | Select _ | Bank_read _ | Reg_read _
  | Var_read _ | Mem_read _ | Pc_read | Coproc_read _ | Intrinsic _ | Phi _ ->
    true
  | Bank_write _ | Reg_write _ | Var_write _ | Mem_write _ | Pc_write _ | Coproc_write _
  | Effect _ ->
    false

(* Can the statement be removed if its value is unused?  Memory reads can
   fault or touch MMIO, so they are never removable. *)
let removable = function
  | Const _ | Struct _ | Binary _ | Unary _ | Normalize _ | Select _ | Bank_read _ | Reg_read _
  | Var_read _ | Pc_read | Intrinsic _ | Phi _ ->
    true
  | Coproc_read _ -> false (* system register reads may have side effects *)
  | Mem_read _ -> false
  | Bank_write _ | Reg_write _ | Var_write _ | Mem_write _ | Pc_write _ | Coproc_write _
  | Effect _ ->
    false

let operands = function
  | Const _ | Struct _ | Reg_read _ | Var_read _ | Pc_read -> []
  | Binary (_, _, a, b) -> [ a; b ]
  | Unary (_, a) | Normalize (_, _, a) -> [ a ]
  | Select (c, t, f) -> [ c; t; f ]
  | Bank_read (_, i) -> [ i ]
  | Bank_write (_, i, v) -> [ i; v ]
  | Reg_write (_, v) | Var_write (_, v) | Pc_write v -> [ v ]
  | Mem_read (_, a) -> [ a ]
  | Mem_write (_, a, v) -> [ a; v ]
  | Coproc_read i -> [ i ]
  | Coproc_write (i, v) -> [ i; v ]
  | Intrinsic (_, args) | Effect (_, args) -> args
  | Phi ins -> List.map snd ins

let map_operands f desc =
  match desc with
  | Const _ | Struct _ | Reg_read _ | Var_read _ | Pc_read -> desc
  | Binary (op, s, a, b) -> Binary (op, s, f a, f b)
  | Unary (op, a) -> Unary (op, f a)
  | Normalize (w, s, a) -> Normalize (w, s, f a)
  | Select (c, t, e) -> Select (f c, f t, f e)
  | Bank_read (b, i) -> Bank_read (b, f i)
  | Bank_write (b, i, v) -> Bank_write (b, f i, f v)
  | Reg_write (r, v) -> Reg_write (r, f v)
  | Var_write (v, x) -> Var_write (v, f x)
  | Pc_write v -> Pc_write (f v)
  | Mem_read (w, a) -> Mem_read (w, f a)
  | Mem_write (w, a, v) -> Mem_write (w, f a, f v)
  | Coproc_read i -> Coproc_read (f i)
  | Coproc_write (i, v) -> Coproc_write (f i, f v)
  | Intrinsic (n, args) -> Intrinsic (n, List.map f args)
  | Effect (n, args) -> Effect (n, List.map f args)
  | Phi ins -> Phi (List.map (fun (b, v) -> (b, f v)) ins)

let term_targets = function Jump b -> [ b ] | Branch (_, t, f) -> [ t; f ] | Ret -> []

let successors b = term_targets b.term

let predecessors action bid =
  List.filter (fun b -> List.mem bid (successors b)) action.blocks

(* Statement count, the metric used for the Sec. 3.6.1 experiment. *)
let size action = List.fold_left (fun acc b -> acc + List.length b.insts + 1) 0 action.blocks

(* Well-formedness check: every operand must reference a defined value and
   every terminator a present block.  Runs after offline optimization. *)
let validate (action : action) =
  let defined = Hashtbl.create 64 in
  List.iter
    (fun b -> List.iter (fun i -> Hashtbl.replace defined i.id ()) b.insts)
    action.blocks;
  let block_ids = List.map (fun b -> b.bid) action.blocks in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          List.iter
            (fun o ->
              if not (Hashtbl.mem defined o) then
                invalid_arg
                  (Printf.sprintf "IR validation: %s uses undefined s_%d in block b_%d of %s"
                     (match produces_value i.desc with true -> Printf.sprintf "s_%d" i.id | false -> "stmt")
                     o b.bid action.name))
            (operands i.desc))
        b.insts;
      match b.term with
      | Jump t -> if not (List.mem t block_ids) then invalid_arg "IR validation: bad jump target"
      | Branch (c, t, f) ->
        if not (Hashtbl.mem defined c) then invalid_arg "IR validation: undefined branch condition";
        if not (List.mem t block_ids && List.mem f block_ids) then
          invalid_arg "IR validation: bad branch target"
      | Ret -> ())
    action.blocks

(* --- printing (paper Fig. 4 style) --------------------------------------- *)

let string_of_binop : Adl.Ast.binop -> string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | And -> "&" | Or -> "|" | Xor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"

let string_of_desc action d =
  let v i = Printf.sprintf "s_%d" i in
  let vs l = String.concat " " (List.map v l) in
  let var x = try Hashtbl.find action.var_names x with Not_found -> Printf.sprintf "v%d" x in
  match d with
  | Const c -> Printf.sprintf "const %Ld" c
  | Struct f -> Printf.sprintf "struct inst %s" f
  | Binary (op, signed, a, b) ->
    Printf.sprintf "binary %s%s %s %s" (string_of_binop op) (if signed then "s" else "") (v a) (v b)
  | Unary (op, a) ->
    let o = match op with Adl.Ast.Neg -> "-" | Not -> "~" | Lnot -> "!" in
    Printf.sprintf "unary %s %s" o (v a)
  | Normalize (w, signed, a) -> Printf.sprintf "%s %d %s" (if signed then "sext" else "trunc") w (v a)
  | Select (c, t, f) -> Printf.sprintf "select %s %s %s" (v c) (v t) (v f)
  | Bank_read (b, i) -> Printf.sprintf "bankregread %d %s" b (v i)
  | Bank_write (b, i, x) -> Printf.sprintf "bankregwrite %d %s %s" b (v i) (v x)
  | Reg_read r -> Printf.sprintf "regread %d" r
  | Reg_write (r, x) -> Printf.sprintf "regwrite %d %s" r (v x)
  | Var_read x -> Printf.sprintf "read %s" (var x)
  | Var_write (x, y) -> Printf.sprintf "write %s %s" (var x) (v y)
  | Mem_read (w, a) -> Printf.sprintf "memread %d %s" w (v a)
  | Mem_write (w, a, x) -> Printf.sprintf "memwrite %d %s %s" w (v a) (v x)
  | Pc_read -> "pcread"
  | Pc_write x -> Printf.sprintf "pcwrite %s" (v x)
  | Coproc_read i -> Printf.sprintf "coprocread %s" (v i)
  | Coproc_write (i, x) -> Printf.sprintf "coprocwrite %s %s" (v i) (v x)
  | Intrinsic (n, args) -> Printf.sprintf "call %s %s" n (vs args)
  | Effect (n, args) -> Printf.sprintf "effect %s %s" n (vs args)
  | Phi ins ->
    Printf.sprintf "phi %s"
      (String.concat " " (List.map (fun (b, x) -> Printf.sprintf "[b_%d: %s]" b (v x)) ins))

let to_string (action : action) =
  let buf = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string buf) "action void %s [\n" action.name;
  Hashtbl.iter (fun _ n -> Printf.ksprintf (Buffer.add_string buf) "  %s\n" n) action.var_names;
  Buffer.add_string buf "] {\n";
  List.iter
    (fun b ->
      Printf.ksprintf (Buffer.add_string buf) "  block b_%d {\n" b.bid;
      List.iter
        (fun i ->
          if produces_value i.desc then
            Printf.ksprintf (Buffer.add_string buf) "    s_%d = %s\n" i.id
              (string_of_desc action i.desc)
          else
            Printf.ksprintf (Buffer.add_string buf) "    s_%d: %s\n" i.id
              (string_of_desc action i.desc))
        b.insts;
      (match b.term with
      | Jump t -> Printf.ksprintf (Buffer.add_string buf) "    jump b_%d\n" t
      | Branch (c, t, f) ->
        Printf.ksprintf (Buffer.add_string buf) "    branch s_%d b_%d b_%d\n" c t f
      | Ret -> Buffer.add_string buf "    return\n");
      Buffer.add_string buf "  }\n")
    action.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
