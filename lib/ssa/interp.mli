(** Direct interpreter for SSA actions.

    This is the semantic oracle: optimizer-correctness property tests
    compare optimized against unoptimized actions under it, and the
    whole-engine reference interpreter ({!Captive.Reference}) executes
    guests with it. *)

(** Callbacks onto the guest machine state. *)
type state = {
  bank_read : int -> int -> int64;
  bank_write : int -> int -> int64 -> unit;
  reg_read : int -> int64;
  reg_write : int -> int64 -> unit;
  pc_read : unit -> int64;
  pc_write : int64 -> unit;
  mem_read : int -> int64 -> int64;  (** width bits, address *)
  mem_write : int -> int64 -> int64 -> unit;
  coproc_read : int64 -> int64;
  coproc_write : int64 -> int64 -> unit;
  effect : string -> int64 list -> unit;
}

(** May be raised by [state] callbacks to abort the current instruction
    (e.g. after delivering a guest exception); caught by {!run}. *)
exception Stop

(** Execute one action to completion against the state.
    @param trace called with every (statement id, value) pair as values
    are computed; the {!Absint} soundness property tests use it to check
    concrete containment in the abstract results.
    @raise Invalid_argument on malformed IR or non-terminating actions. *)
val run : ?trace:(Ir.id -> int64 -> unit) -> state -> Ir.action -> field:(string -> int64) -> unit
