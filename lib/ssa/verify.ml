(* SSA well-formedness checker.

   Every pass in the offline pipeline (Fig. 5) silently assumes the
   invariants checked here: unique statement ids, def-before-use (via
   dominance over the block CFG), phi arms matching the actual CFG
   predecessors, terminator targets resolving to present blocks, uses
   referring only to value-producing statements, and variable accesses
   staying within the declared range.  [Opt.optimize ~verify:true] runs
   the checker after every pass, so a pass that breaks the IR is
   pinpointed by name instead of surfacing later as miscompiled guest
   code.

   The checker never mutates the action and reports *all* violations it
   finds rather than stopping at the first, so tooling (captive_run
   lint) can show complete diagnostics. *)

module IntSet = Set.Make (Int)

type violation = {
  v_block : int option; (* containing block, if any *)
  v_stmt : Ir.id option; (* offending statement, if any *)
  v_msg : string;
}

exception
  Invalid of {
    action : string;
    phase : string; (* the pass (or pipeline stage) that produced the IR *)
    violations : violation list;
  }

let string_of_violation v =
  let where =
    match (v.v_block, v.v_stmt) with
    | Some b, Some s -> Printf.sprintf "b_%d/s_%d: " b s
    | Some b, None -> Printf.sprintf "b_%d: " b
    | None, Some s -> Printf.sprintf "s_%d: " s
    | None, None -> ""
  in
  where ^ v.v_msg

let report ~action ~phase violations =
  Printf.sprintf "SSA verification failed for %s after %s:\n%s" action phase
    (String.concat "\n" (List.map (fun v -> "  " ^ string_of_violation v) violations))

(* --- CFG helpers ------------------------------------------------------------ *)

(* Blocks reachable from the entry.  Unreachable blocks are *not* a
   violation (they legitimately appear between passes, before
   unreachable-block elimination runs), but dominance is only defined
   over the reachable subgraph. *)
let reachable_set (action : Ir.action) =
  match action.Ir.blocks with
  | [] -> IntSet.empty
  | entry :: _ ->
    let tbl = Hashtbl.create 16 in
    List.iter (fun b -> Hashtbl.replace tbl b.Ir.bid b) action.Ir.blocks;
    let seen = ref IntSet.empty in
    let rec visit bid =
      if not (IntSet.mem bid !seen) then begin
        seen := IntSet.add bid !seen;
        match Hashtbl.find_opt tbl bid with
        | Some b -> List.iter visit (Ir.successors b)
        | None -> () (* dangling target: reported separately *)
      end
    in
    visit entry.Ir.bid;
    !seen

(* Iterative dominator computation over the reachable blocks:
   dom(entry) = {entry}; dom(b) = {b} union (intersection over preds).
   Actions are small (tens of blocks), so the set-based fixpoint is
   plenty fast. *)
let dominators (action : Ir.action) : (int, IntSet.t) Hashtbl.t =
  let reach = reachable_set action in
  let blocks = List.filter (fun b -> IntSet.mem b.Ir.bid reach) action.Ir.blocks in
  let all = List.fold_left (fun acc b -> IntSet.add b.Ir.bid acc) IntSet.empty blocks in
  let preds = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace preds b.Ir.bid []) blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt preds s with
          | Some l -> Hashtbl.replace preds s (b.Ir.bid :: l)
          | None -> ())
        (Ir.successors b))
    blocks;
  let dom = Hashtbl.create 16 in
  let entry = match blocks with [] -> -1 | b :: _ -> b.Ir.bid in
  List.iter
    (fun b ->
      if b.Ir.bid = entry then Hashtbl.replace dom b.Ir.bid (IntSet.singleton entry)
      else Hashtbl.replace dom b.Ir.bid all)
    blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b.Ir.bid <> entry then begin
          let ps = Hashtbl.find preds b.Ir.bid in
          let meet =
            List.fold_left
              (fun acc p ->
                let dp = Hashtbl.find dom p in
                match acc with None -> Some dp | Some s -> Some (IntSet.inter s dp))
              None ps
          in
          let nd =
            match meet with None -> IntSet.singleton b.Ir.bid | Some s -> IntSet.add b.Ir.bid s
          in
          if not (IntSet.equal nd (Hashtbl.find dom b.Ir.bid)) then begin
            Hashtbl.replace dom b.Ir.bid nd;
            changed := true
          end
        end)
      blocks
  done;
  dom

(* --- the checker ------------------------------------------------------------- *)

let check (action : Ir.action) : violation list =
  let violations = ref [] in
  let add ?block ?stmt fmt =
    Printf.ksprintf
      (fun msg -> violations := { v_block = block; v_stmt = stmt; v_msg = msg } :: !violations)
      fmt
  in
  (match action.Ir.blocks with
  | [] -> add "action has no blocks"
  | _ -> ());
  (* Block ids unique. *)
  let block_ids = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Hashtbl.mem block_ids b.Ir.bid then add ~block:b.Ir.bid "duplicate block id"
      else Hashtbl.replace block_ids b.Ir.bid ())
    action.Ir.blocks;
  (* Statement ids unique, within the id range, and indexed for use
     checking; remember position and block of each definition. *)
  let def_site : (Ir.id, int * int * Ir.desc) Hashtbl.t = Hashtbl.create 64 in
  (* id -> (block, position, desc) *)
  List.iter
    (fun b ->
      List.iteri
        (fun pos i ->
          if i.Ir.id < 0 || i.Ir.id >= action.Ir.next_id then
            add ~block:b.Ir.bid ~stmt:i.Ir.id "statement id outside [0, next_id)";
          if Hashtbl.mem def_site i.Ir.id then
            add ~block:b.Ir.bid ~stmt:i.Ir.id "duplicate statement id"
          else Hashtbl.replace def_site i.Ir.id (b.Ir.bid, pos, i.Ir.desc))
        b.Ir.insts)
    action.Ir.blocks;
  (* Terminator targets. *)
  List.iter
    (fun b ->
      List.iter
        (fun t ->
          if not (Hashtbl.mem block_ids t) then
            add ~block:b.Ir.bid "terminator targets missing block b_%d" t)
        (Ir.term_targets b.Ir.term))
    action.Ir.blocks;
  (* Variable discipline: every Var_read/Var_write names a declared
     variable (allocated by fresh_var, hence registered and in range). *)
  let check_var b i v =
    if v < 0 || v >= action.Ir.next_var then
      add ~block:b ~stmt:i "variable v%d outside [0, next_var)" v
    else if not (Hashtbl.mem action.Ir.var_names v) then
      add ~block:b ~stmt:i "variable v%d has no registered name" v
  in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.Ir.desc with
          | Ir.Var_read v | Ir.Var_write (v, _) -> check_var b.Ir.bid i.Ir.id v
          | _ -> ())
        b.Ir.insts)
    action.Ir.blocks;
  (* Use checking: operands must reference existing, value-producing
     statements, and the definition must dominate the use. *)
  let dom = dominators action in
  let reach = reachable_set action in
  let dominates a b =
    (* does block a dominate block b? *)
    match Hashtbl.find_opt dom b with Some s -> IntSet.mem a s | None -> false
  in
  let check_use ~ublock ~upos ?user operand =
    let add fmt = add ~block:ublock ?stmt:user fmt in
    match Hashtbl.find_opt def_site operand with
    | None -> add "use of undefined value s_%d" operand
    | Some (_, _, d) when not (Ir.produces_value d) ->
      add "use of non-value statement s_%d" operand
    | Some (dblock, dpos, _) ->
      (* Dominance is only defined over reachable code; skip the
         ordering check inside unreachable blocks. *)
      if IntSet.mem ublock reach then
        if dblock = ublock then begin
          if dpos >= upos then
            add "use of s_%d before its definition" operand
        end
        else if not (dominates dblock ublock) then
          add "use of s_%d whose definition in b_%d does not dominate b_%d" operand dblock ublock
  in
  (* Predecessor map for phi checking. *)
  let preds_of = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          Hashtbl.replace preds_of s
            (b.Ir.bid :: (try Hashtbl.find preds_of s with Not_found -> [])))
        (Ir.successors b))
    action.Ir.blocks;
  let entry_bid = match action.Ir.blocks with [] -> -1 | b :: _ -> b.Ir.bid in
  List.iter
    (fun b ->
      List.iteri
        (fun pos i ->
          match i.Ir.desc with
          | Ir.Phi arms ->
            (* Phi operands are uses at the end of the corresponding
               predecessor, not at the phi itself. *)
            let actual_preds =
              try Hashtbl.find preds_of b.Ir.bid with Not_found -> []
            in
            if b.Ir.bid = entry_bid then
              add ~block:b.Ir.bid ~stmt:i.Ir.id "phi in entry block (entry has no predecessors)";
            let seen = Hashtbl.create 4 in
            List.iter
              (fun (p, v) ->
                if Hashtbl.mem seen p then
                  add ~block:b.Ir.bid ~stmt:i.Ir.id "phi has duplicate arm for b_%d" p
                else Hashtbl.replace seen p ();
                if not (List.mem p actual_preds) then
                  add ~block:b.Ir.bid ~stmt:i.Ir.id "phi arm for b_%d which is not a predecessor" p
                else begin
                  (* The value must be available at the end of the arm's
                     predecessor block. *)
                  match Hashtbl.find_opt def_site v with
                  | None -> add ~block:b.Ir.bid ~stmt:i.Ir.id "phi arm uses undefined value s_%d" v
                  | Some (_, _, d) when not (Ir.produces_value d) ->
                    add ~block:b.Ir.bid ~stmt:i.Ir.id "phi arm uses non-value statement s_%d" v
                  | Some (dblock, _, _) ->
                    if IntSet.mem p reach && not (dominates dblock p) then
                      add ~block:b.Ir.bid ~stmt:i.Ir.id
                        "phi arm value s_%d (defined in b_%d) unavailable at end of b_%d" v dblock p
                end)
              arms;
            List.iter
              (fun p ->
                if not (Hashtbl.mem seen p) then
                  add ~block:b.Ir.bid ~stmt:i.Ir.id "phi misses an arm for predecessor b_%d" p)
              actual_preds
          | d -> List.iter (check_use ~ublock:b.Ir.bid ~upos:pos ~user:i.Ir.id) (Ir.operands d))
        b.Ir.insts;
      match b.Ir.term with
      | Ir.Branch (c, _, _) ->
        check_use ~ublock:b.Ir.bid ~upos:(List.length b.Ir.insts) c
      | Ir.Jump _ | Ir.Ret -> ())
    action.Ir.blocks;
  List.rev !violations

let check_exn ?(phase = "construction") (action : Ir.action) =
  match check action with
  | [] -> ()
  | violations -> raise (Invalid { action = action.Ir.name; phase; violations })
