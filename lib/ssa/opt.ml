(* The offline optimization passes of the paper's Fig. 5, gated by
   optimization level O1-O4 and run to a fixed point.

   Inlining (O1-4 in the paper) is performed during SSA construction, so it
   is always active, matching the paper's observation that O1 output is the
   inlined-but-otherwise-raw form. *)

module Ast = Adl.Ast
module Eval = Adl.Eval

(* The architecture context is shared with the abstract interpreter (which
   the absint-simplify pass and the lint-time validator run on); the type
   lives in Absint and is re-exported here so existing consumers keep
   their [Opt.context] spelling. *)
type context = Absint.ctx = {
  field_widths : (string * int) list; (* decode-pattern field widths *)
  bank_widths : (int * int) list; (* bank index -> element width *)
  slot_widths : (int * int) list;
  bank_counts : (int * int) list; (* bank index -> number of elements *)
  slot_indices : int list;
}

let no_context = Absint.no_ctx

(* --- utilities ------------------------------------------------------------ *)

let defs_of (action : Ir.action) : (Ir.id, Ir.desc) Hashtbl.t =
  let t = Hashtbl.create 64 in
  List.iter
    (fun b -> List.iter (fun i -> Hashtbl.replace t i.Ir.id i.Ir.desc) b.Ir.insts)
    action.Ir.blocks;
  t

let iter_uses (action : Ir.action) f =
  List.iter
    (fun b ->
      List.iter (fun i -> List.iter f (Ir.operands i.Ir.desc)) b.Ir.insts;
      match b.Ir.term with Ir.Branch (c, _, _) -> f c | Ir.Jump _ | Ir.Ret -> ())
    action.Ir.blocks

let used_ids action =
  let t = Hashtbl.create 64 in
  iter_uses action (fun id -> Hashtbl.replace t id ());
  t

(* Rewrite every use of [from] to [to_].  Malformed requests raise a
   descriptive error instead of silently corrupting the IR: [to_] must be
   a defined value-producing statement, and must differ from [from]. *)
let replace_uses (action : Ir.action) ~from ~to_ =
  if from = to_ then
    invalid_arg
      (Printf.sprintf "Opt.replace_uses: s_%d -> itself in action %s" from action.Ir.name);
  (match
     List.find_map
       (fun b -> List.find_opt (fun i -> i.Ir.id = to_) b.Ir.insts)
       action.Ir.blocks
   with
  | Some i when Ir.produces_value i.Ir.desc -> ()
  | Some _ ->
    invalid_arg
      (Printf.sprintf
         "Opt.replace_uses: replacement s_%d produces no value in action %s" to_ action.Ir.name)
  | None ->
    invalid_arg
      (Printf.sprintf "Opt.replace_uses: replacement s_%d is not defined in action %s" to_
         action.Ir.name));
  let subst x = if x = from then to_ else x in
  List.iter
    (fun b ->
      List.iter (fun i -> i.Ir.desc <- Ir.map_operands subst i.Ir.desc) b.Ir.insts;
      match b.Ir.term with
      | Ir.Branch (c, t, f) when c = from -> b.Ir.term <- Ir.Branch (to_, t, f)
      | _ -> ())
    action.Ir.blocks

(* --- dead code elimination ------------------------------------------------ *)

let dead_code_elim _ctx (action : Ir.action) =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    let used = used_ids action in
    let removed = ref false in
    List.iter
      (fun b ->
        let keep i =
          (not (Ir.removable i.Ir.desc)) || Hashtbl.mem used i.Ir.id
        in
        let before = List.length b.Ir.insts in
        b.Ir.insts <- List.filter keep b.Ir.insts;
        if List.length b.Ir.insts <> before then removed := true)
      action.Ir.blocks;
    if !removed then changed := true else continue_ := false
  done;
  !changed

(* --- unreachable block elimination ---------------------------------------- *)

let unreachable_block_elim _ctx (action : Ir.action) =
  let reachable = Hashtbl.create 8 in
  let rec visit bid =
    if not (Hashtbl.mem reachable bid) then begin
      Hashtbl.replace reachable bid ();
      let b = Ir.find_block action bid in
      List.iter visit (Ir.successors b)
    end
  in
  visit (Ir.entry_block action).Ir.bid;
  let before = List.length action.Ir.blocks in
  action.Ir.blocks <- List.filter (fun b -> Hashtbl.mem reachable b.Ir.bid) action.Ir.blocks;
  (* Prune phi inputs from removed predecessors. *)
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.Ir.desc with
          | Ir.Phi ins ->
            i.Ir.desc <- Ir.Phi (List.filter (fun (p, _) -> Hashtbl.mem reachable p) ins)
          | _ -> ())
        b.Ir.insts)
    action.Ir.blocks;
  List.length action.Ir.blocks <> before

(* --- control flow simplification ------------------------------------------- *)

let control_flow_simplify _ctx (action : Ir.action) =
  let defs = defs_of action in
  let changed = ref false in
  List.iter
    (fun b ->
      match b.Ir.term with
      | Ir.Branch (_, t, f) when t = f ->
        b.Ir.term <- Ir.Jump t;
        changed := true
      | Ir.Branch (c, t, f) -> (
        match Hashtbl.find_opt defs c with
        | Some (Ir.Const v) ->
          b.Ir.term <- Ir.Jump (if v <> 0L then t else f);
          changed := true
        | _ -> ())
      | Ir.Jump _ | Ir.Ret -> ())
    action.Ir.blocks;
  !changed

(* --- block merging ---------------------------------------------------------- *)

let block_merge _ctx (action : Ir.action) =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let merged =
      List.find_map
        (fun a ->
          match a.Ir.term with
          | Ir.Jump tb when tb <> a.Ir.bid ->
            let b = Ir.find_block action tb in
            let preds = Ir.predecessors action tb in
            if List.length preds = 1 && tb <> (Ir.entry_block action).Ir.bid then Some (a, b)
            else None
          | _ -> None)
        action.Ir.blocks
    in
    match merged with
    | Some (a, b) ->
      (* Single-predecessor phis are aliases. *)
      List.iter
        (fun i ->
          match i.Ir.desc with
          | Ir.Phi [ (_, v) ] -> replace_uses action ~from:i.Ir.id ~to_:v
          | _ -> ())
        b.Ir.insts;
      let non_phi =
        List.filter (fun i -> match i.Ir.desc with Ir.Phi _ -> false | _ -> true) b.Ir.insts
      in
      a.Ir.insts <- a.Ir.insts @ non_phi;
      a.Ir.term <- b.Ir.term;
      (* Phis in b's successors referring to b must now refer to a. *)
      List.iter
        (fun blk ->
          List.iter
            (fun i ->
              match i.Ir.desc with
              | Ir.Phi ins ->
                i.Ir.desc <- Ir.Phi (List.map (fun (p, v) -> ((if p = b.Ir.bid then a.Ir.bid else p), v)) ins)
              | _ -> ())
            blk.Ir.insts)
        action.Ir.blocks;
      action.Ir.blocks <- List.filter (fun blk -> blk.Ir.bid <> b.Ir.bid) action.Ir.blocks;
      changed := true;
      continue_ := true
    | None -> ()
  done;
  !changed

(* --- jump threading (O2) ---------------------------------------------------- *)

let jump_threading _ctx (action : Ir.action) =
  let changed = ref false in
  let has_phis b = List.exists (fun i -> match i.Ir.desc with Ir.Phi _ -> true | _ -> false) b.Ir.insts in
  let entry = (Ir.entry_block action).Ir.bid in
  List.iter
    (fun b ->
      if b.Ir.bid <> entry && b.Ir.insts = [] then
        match b.Ir.term with
        | Ir.Jump target when target <> b.Ir.bid && not (has_phis (Ir.find_block action target)) ->
          (* Redirect all predecessors of b straight to target. *)
          List.iter
            (fun p ->
              let redirect x = if x = b.Ir.bid then target else x in
              match p.Ir.term with
              | Ir.Jump t ->
                if redirect t <> t then begin
                  p.Ir.term <- Ir.Jump (redirect t);
                  changed := true
                end
              | Ir.Branch (c, t, f) ->
                if redirect t <> t || redirect f <> f then begin
                  p.Ir.term <- Ir.Branch (c, redirect t, redirect f);
                  changed := true
                end
              | Ir.Ret -> ())
            action.Ir.blocks
        | _ -> ())
    action.Ir.blocks;
  !changed

(* --- dead variable elimination ---------------------------------------------- *)

let dead_variable_elim _ctx (action : Ir.action) =
  let read_vars = Hashtbl.create 8 in
  List.iter
    (fun b ->
      List.iter
        (fun i -> match i.Ir.desc with Ir.Var_read v -> Hashtbl.replace read_vars v () | _ -> ())
        b.Ir.insts)
    action.Ir.blocks;
  let changed = ref false in
  List.iter
    (fun b ->
      let keep i =
        match i.Ir.desc with
        | Ir.Var_write (v, _) when not (Hashtbl.mem read_vars v) ->
          changed := true;
          false
        | _ -> true
      in
      b.Ir.insts <- List.filter keep b.Ir.insts)
    action.Ir.blocks;
  !changed

(* --- constant folding (O3) --------------------------------------------------- *)

let const_fold _ctx (action : Ir.action) =
  let defs = defs_of action in
  let const_of id =
    match Hashtbl.find_opt defs id with Some (Ir.Const v) -> Some v | _ -> None
  in
  let changed = ref false in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          let set v =
            i.Ir.desc <- Ir.Const v;
            Hashtbl.replace defs i.Ir.id (Ir.Const v);
            changed := true
          in
          match i.Ir.desc with
          | Ir.Binary (op, signed, a, bb) -> (
            match (const_of a, const_of bb) with
            | Some va, Some vb -> set (Eval.binop op ~signed va vb)
            | _ -> ())
          | Ir.Unary (op, a) -> (
            match const_of a with Some va -> set (Eval.unop op va) | None -> ())
          | Ir.Normalize (w, signed, a) -> (
            match const_of a with
            | Some va -> set (Eval.normalize (Ast.Tint { bits = w; signed }) va)
            | None -> ())
          | Ir.Select (c, t, f) -> (
            match const_of c with
            | Some vc -> replace_uses action ~from:i.Ir.id ~to_:(if vc <> 0L then t else f)
            | None -> ())
          | Ir.Intrinsic (name, args) -> (
            let vals = List.map const_of args in
            if List.for_all Option.is_some vals then
              match Eval.builtin name (List.map Option.get vals) with
              | Some v -> set v
              | None -> ())
          | _ -> ())
        b.Ir.insts)
    action.Ir.blocks;
  !changed

(* --- value propagation (O3) --------------------------------------------------- *)

(* Known upper bound on the number of significant (unsigned) bits of each
   value; used to remove provably redundant truncations and masks. *)
let width_analysis ctx (action : Ir.action) =
  let defs = defs_of action in
  let widths = Hashtbl.create 64 in
  let width_of id = try Hashtbl.find widths id with Not_found -> 64 in
  (* Intrinsic result widths are shared with the abstract interpreter so
     both layers assume identical facts about builtins. *)
  let intrinsic_width = Absint.intrinsic_width in
  (* One forward pass per block iteration until stable (cheap: small IR). *)
  let stable = ref false in
  while not !stable do
    stable := true;
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            let w =
              match i.Ir.desc with
              | Ir.Const c -> if c < 0L then 64 else 64 - Dbt_util.Bits.clz c
              | Ir.Struct f -> ( match List.assoc_opt f ctx.field_widths with Some w -> w | None -> 64)
              | Ir.Normalize (w, false, a) -> min w (width_of a)
              | Ir.Normalize (_, true, _) -> 64
              | Ir.Binary (Ast.And, _, a, bb) -> min (width_of a) (width_of bb)
              | Ir.Binary ((Ast.Or | Ast.Xor), _, a, bb) -> max (width_of a) (width_of bb)
              | Ir.Binary (Ast.Add, _, a, bb) -> min 64 (1 + max (width_of a) (width_of bb))
              | Ir.Binary (Ast.Shl, _, a, bb) -> (
                match Hashtbl.find_opt defs bb with
                | Some (Ir.Const c) when c >= 0L && c < 64L ->
                  min 64 (width_of a + Int64.to_int c)
                | _ -> 64)
              | Ir.Binary (Ast.Shr, false, a, bb) -> (
                match Hashtbl.find_opt defs bb with
                | Some (Ir.Const c) when c >= 0L && c < 64L -> max 0 (width_of a - Int64.to_int c)
                | _ -> width_of a)
              | Ir.Binary ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _, _) -> 1
              | Ir.Unary (Ast.Lnot, _) -> 1
              | Ir.Select (_, t, f) -> max (width_of t) (width_of f)
              | Ir.Bank_read (bank, _) -> (
                match List.assoc_opt bank ctx.bank_widths with Some w -> w | None -> 64)
              | Ir.Reg_read slot -> (
                match List.assoc_opt slot ctx.slot_widths with Some w -> w | None -> 64)
              | Ir.Mem_read (w, _) -> w
              | Ir.Intrinsic (name, _) -> intrinsic_width name
              | Ir.Phi ins -> List.fold_left (fun acc (_, v) -> max acc (width_of v)) 0 ins
              | _ -> 64
            in
            if w < width_of i.Ir.id then begin
              Hashtbl.replace widths i.Ir.id w;
              stable := false
            end)
          b.Ir.insts)
      action.Ir.blocks
  done;
  widths

let value_propagation ctx (action : Ir.action) =
  let defs = defs_of action in
  let widths = width_analysis ctx action in
  let width_of id = try Hashtbl.find widths id with Not_found -> 64 in
  let const_of id =
    match Hashtbl.find_opt defs id with Some (Ir.Const v) -> Some v | _ -> None
  in
  let changed = ref false in
  let alias from to_ =
    replace_uses action ~from ~to_;
    changed := true
  in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.Ir.desc with
          (* A truncation that cannot change the value. *)
          | Ir.Normalize (w, false, a) when width_of a <= w -> alias i.Ir.id a
          (* Masking with an all-covering constant. *)
          | Ir.Binary (Ast.And, _, a, bb) -> (
            match (const_of a, const_of bb) with
            | _, Some m when m = Dbt_util.Bits.mask (width_of a) && width_of a < 64 ->
              alias i.Ir.id a
            | _, Some (-1L) -> alias i.Ir.id a
            | Some (-1L), _ -> alias i.Ir.id bb
            | _ -> ())
          (* Arithmetic identities. *)
          | Ir.Binary ((Ast.Add | Ast.Or | Ast.Xor | Ast.Shl | Ast.Shr), _, a, bb)
            when const_of bb = Some 0L ->
            alias i.Ir.id a
          | Ir.Binary ((Ast.Add | Ast.Or | Ast.Xor), _, a, bb) when const_of a = Some 0L ->
            alias i.Ir.id bb
          | Ir.Binary (Ast.Sub, _, a, bb) when const_of bb = Some 0L -> alias i.Ir.id a
          | Ir.Binary (Ast.Mul, _, a, bb) when const_of bb = Some 1L -> alias i.Ir.id a
          | Ir.Binary (Ast.Mul, _, a, bb) when const_of a = Some 1L -> alias i.Ir.id bb
          | Ir.Select (_, t, f) when t = f -> alias i.Ir.id t
          | _ -> ())
        b.Ir.insts)
    action.Ir.blocks;
  !changed

(* --- load coalescing (O3) ------------------------------------------------------ *)

(* Within a block, forward variable stores to subsequent loads and collapse
   repeated loads. *)
let load_coalescing _ctx (action : Ir.action) =
  let changed = ref false in
  List.iter
    (fun b ->
      let known : (int, Ir.id) Hashtbl.t = Hashtbl.create 8 in
      let kept =
        List.filter
          (fun i ->
            match i.Ir.desc with
            | Ir.Var_write (v, x) ->
              Hashtbl.replace known v x;
              true
            | Ir.Var_read v -> (
              match Hashtbl.find_opt known v with
              | Some x ->
                replace_uses action ~from:i.Ir.id ~to_:x;
                changed := true;
                false
              | None ->
                Hashtbl.replace known v i.Ir.id;
                true)
            | _ -> true)
          b.Ir.insts
      in
      b.Ir.insts <- kept)
    action.Ir.blocks;
  !changed

(* --- dead write elimination (O3) ------------------------------------------------ *)

(* A variable store overwritten later in the same block with no intervening
   read of that variable is dead regardless of cross-block liveness. *)
let dead_write_elim _ctx (action : Ir.action) =
  let changed = ref false in
  List.iter
    (fun b ->
      (* Scan backwards: a write is dead if we have already seen a write to
         the same variable and no read in between. *)
      let writes_seen = Hashtbl.create 8 in
      let kept_rev =
        List.fold_left
          (fun acc i ->
            match i.Ir.desc with
            | Ir.Var_write (v, _) ->
              if Hashtbl.mem writes_seen v then begin
                changed := true;
                acc
              end
              else begin
                Hashtbl.replace writes_seen v ();
                i :: acc
              end
            | Ir.Var_read v ->
              Hashtbl.remove writes_seen v;
              i :: acc
            | _ -> i :: acc)
          [] (List.rev b.Ir.insts)
      in
      b.Ir.insts <- kept_rev)
    action.Ir.blocks;
  !changed

(* --- PHI analysis and elimination (O4) ------------------------------------------- *)

type reach = Bot | Val of Ir.id | Top

let meet a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Val x, Val y -> if x = y then Val x else Top
  | Top, _ | _, Top -> Top

(* Promote variables to SSA values with phi nodes, then immediately lower
   phis back to variable copies on the incoming edges (the paper runs "PHI
   Analysis" and "PHI Elimination" as an O4 pair).  The net effect is that
   variables with a single reaching definition disappear entirely. *)
let phi_passes _ctx (action : Ir.action) =
  let nvars = action.Ir.next_var in
  if nvars = 0 then false
  else begin
    let blocks = action.Ir.blocks in
    let bids = List.map (fun b -> b.Ir.bid) blocks in
    (* last write per var per block *)
    let last_write = Hashtbl.create 16 in
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            match i.Ir.desc with
            | Ir.Var_write (v, x) -> Hashtbl.replace last_write (b.Ir.bid, v) x
            | _ -> ())
          b.Ir.insts)
      blocks;
    (* Iterative reaching-value analysis. *)
    let in_ = Hashtbl.create 16 in
    let get_in bid v = try Hashtbl.find in_ (bid, v) with Not_found -> Bot in
    let out bid v =
      match Hashtbl.find_opt last_write (bid, v) with
      | Some x -> Val x
      | None -> get_in bid v
    in
    let entry = (Ir.entry_block action).Ir.bid in
    let preds_tbl = Hashtbl.create 16 in
    List.iter (fun bid -> Hashtbl.replace preds_tbl bid (List.map (fun b -> b.Ir.bid) (Ir.predecessors action bid))) bids;
    let stable = ref false in
    while not !stable do
      stable := true;
      List.iter
        (fun bid ->
          if bid <> entry then
            for v = 0 to nvars - 1 do
              let preds = Hashtbl.find preds_tbl bid in
              let m = List.fold_left (fun acc p -> meet acc (out p v)) Bot preds in
              if m <> get_in bid v then begin
                Hashtbl.replace in_ (bid, v) m;
                stable := false
              end
            done)
        bids
    done;
    (* Materialization.  A reaching value may itself be a Var_read that
       this pass also eliminates, so first collect the full alias map
       (read id -> reaching value id), resolve it transitively, and only
       then rewrite operands and drop the aliased reads in one sweep. *)
    let alias : (Ir.id, Ir.id) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun b ->
        let current = Array.make nvars None in
        for v = 0 to nvars - 1 do
          match get_in b.Ir.bid v with
          | Val x -> current.(v) <- Some x
          | Bot | Top -> current.(v) <- None
        done;
        List.iter
          (fun i ->
            match i.Ir.desc with
            | Ir.Var_write (v, x) -> current.(v) <- Some x
            | Ir.Var_read v -> (
              match current.(v) with
              | Some x -> Hashtbl.replace alias i.Ir.id x
              | None -> current.(v) <- Some i.Ir.id (* later reads share this one *))
            | _ -> ())
          b.Ir.insts)
      blocks;
    if Hashtbl.length alias = 0 then false
    else begin
      let rec resolve fuel x =
        if fuel = 0 then x
        else
          match Hashtbl.find_opt alias x with
          | Some y when y <> x -> resolve (fuel - 1) y
          | _ -> x
      in
      (* Aliases that do not resolve to a surviving definition (cycles
         through undefined paths) keep their reads. *)
      let unresolved =
        Hashtbl.fold
          (fun r _ acc -> if Hashtbl.mem alias (resolve 64 r) then r :: acc else acc)
          alias []
      in
      List.iter (Hashtbl.remove alias) unresolved;
      if Hashtbl.length alias = 0 then false
      else begin
      let subst x = resolve 64 x in
      List.iter
        (fun b ->
          b.Ir.insts <-
            List.filter
              (fun i ->
                if Hashtbl.mem alias i.Ir.id then false
                else begin
                  i.Ir.desc <- Ir.map_operands subst i.Ir.desc;
                  true
                end)
              b.Ir.insts;
          match b.Ir.term with
          | Ir.Branch (c, t, f) when subst c <> c -> b.Ir.term <- Ir.Branch (subst c, t, f)
          | _ -> ())
        blocks;
      true
      end
    end
  end

(* --- abstract-interpretation simplification (O3) --------------------------------- *)

(* Analysis-driven simplification over the known-bits/interval domain of
   {!Absint}: strictly stronger than local value propagation (facts flow
   through decode-field seeds, selects, variable states and branch
   pruning).  The pass body lives in Absint; replace_uses is injected to
   avoid a module cycle. *)
let absint_simplify ctx (action : Ir.action) = Absint.simplify ~replace_uses ctx action

(* --- pass manager ----------------------------------------------------------------- *)

type pass = { pname : string; level : int; run : context -> Ir.action -> bool }

let passes : pass list =
  [
    { pname = "Dead Code Elimination"; level = 1; run = dead_code_elim };
    { pname = "Unreachable Block Elimination"; level = 1; run = unreachable_block_elim };
    { pname = "Control Flow Simplification"; level = 1; run = control_flow_simplify };
    { pname = "Block Merging"; level = 1; run = block_merge };
    { pname = "Dead Variable Elimination"; level = 1; run = dead_variable_elim };
    { pname = "Jump Threading"; level = 2; run = jump_threading };
    { pname = "Constant Folding"; level = 3; run = const_fold };
    { pname = "Value Propagation"; level = 3; run = value_propagation };
    { pname = "Load Coalescing"; level = 3; run = load_coalescing };
    { pname = "Dead Write Elimination"; level = 3; run = dead_write_elim };
    { pname = "absint-simplify"; level = 3; run = absint_simplify };
    { pname = "PHI Analysis/Elimination"; level = 4; run = phi_passes };
  ]

(* Run a pass list to a fixed point.  With [verify], the SSA
   well-formedness checker runs after every pass application that
   reported a change, so a pass that breaks an invariant is attributed
   by name (raising [Verify.Invalid] with the pass as the phase).
   A pass that escapes with a bare exception is re-raised with the pass
   and action attached, and a pipeline that fails to reach a fixed point
   within the iteration budget is an error rather than a silent give-up. *)
let run_passes ?(ctx = no_context) ?(verify = false) (enabled : pass list) (action : Ir.action) =
  let run_one p =
    let changed =
      try p.run ctx action with
      | Verify.Invalid _ as e -> raise e
      | Invalid_argument msg | Failure msg ->
        invalid_arg
          (Printf.sprintf "pass %s failed on action %s: %s" p.pname action.Ir.name msg)
      | Not_found ->
        invalid_arg (Printf.sprintf "pass %s failed on action %s: Not_found" p.pname action.Ir.name)
    in
    if verify && changed then Verify.check_exn ~phase:p.pname action;
    changed
  in
  if verify then Verify.check_exn ~phase:"SSA construction" action;
  let rec go n =
    if n > 50 then
      invalid_arg
        (Printf.sprintf "Opt.run_passes: no fixed point after %d rounds on action %s" n
           action.Ir.name)
    else begin
      let changed = List.fold_left (fun acc p -> run_one p || acc) false enabled in
      if changed then go (n + 1)
    end
  in
  go 0

(* Optimize [action] in place at the given level (1-4), iterating the
   enabled passes to a fixed point as the paper describes. *)
let optimize ?(ctx = no_context) ?(verify = false) ~level (action : Ir.action) =
  run_passes ~ctx ~verify (List.filter (fun p -> p.level <= level) passes) action
