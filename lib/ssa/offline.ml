(* The offline generation stage (paper Sec. 2.2): parse an ADL description,
   type-check it, build and optimize the domain-specific SSA for every
   instruction behaviour, and compile the decoder decision tree.

   The result - a [model] - is the "architecture-specific module" that the
   online runtime loads. *)

type model = {
  arch : Adl.Ast.arch;
  decoder : Adl.Decode.t;
  actions : (string, Ir.action) Hashtbl.t;
  opt_level : int;
}

let opt_context (arch : Adl.Ast.arch) (xname : string) : Opt.context =
  {
    Opt.field_widths = Adl.Typecheck.fields_of_execute arch xname;
    bank_widths = List.map (fun b -> (b.Adl.Ast.b_index, b.Adl.Ast.b_width)) arch.Adl.Ast.a_banks;
    slot_widths = List.map (fun s -> (s.Adl.Ast.s_index, s.Adl.Ast.s_width)) arch.Adl.Ast.a_slots;
    bank_counts = List.map (fun b -> (b.Adl.Ast.b_index, b.Adl.Ast.b_count)) arch.Adl.Ast.a_banks;
    slot_indices = List.map (fun s -> s.Adl.Ast.s_index) arch.Adl.Ast.a_slots;
  }

(* Build a model from ADL source text at the given optimization level.
   [verify] additionally runs the SSA well-formedness checker after
   every optimization pass (and once on the final IR), attributing any
   broken invariant to the offending pass by name. *)
let build ?(opt_level = 4) ?(verify = false) (source : string) : model =
  let arch = Adl.Parser.parse_string source in
  let arch = Adl.Typecheck.check arch in
  let decoder = Adl.Decode.of_arch arch in
  let actions = Hashtbl.create 64 in
  List.iter
    (fun x ->
      let action = Build.execute arch x in
      let ctx = opt_context arch x.Adl.Ast.x_name in
      Opt.optimize ~ctx ~verify ~level:opt_level action;
      if verify then Verify.check_exn ~phase:"optimized pipeline output" action;
      Ir.validate action;
      Hashtbl.replace actions x.Adl.Ast.x_name action)
    arch.Adl.Ast.a_executes;
  { arch; decoder; actions; opt_level }

let action model name =
  match Hashtbl.find_opt model.actions name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "no execute action %S" name)

(* Total statement count across all actions: the proxy for generated lines
   of code used in the Sec. 3.6.1 experiment. *)
let total_size model = Hashtbl.fold (fun _ a acc -> acc + Ir.size a) model.actions 0

let decode model word = Adl.Decode.decode model.decoder word
