(** The offline generation stage (paper Sec. 2.2).

    [build source] parses an ADL description, type-checks it, lowers every
    instruction behaviour into domain-specific SSA, optimizes it at the
    requested level (the Fig. 5 pass list, run to a fixed point), validates
    the result, and compiles the decoder decision tree.  The resulting
    {!model} is the "architecture-specific module" the online runtime
    loads; its actions are consumed by {!Gen.translate} at JIT time. *)

type model = {
  arch : Adl.Ast.arch;
  decoder : Adl.Decode.t;
  actions : (string, Ir.action) Hashtbl.t;
  opt_level : int;
}

(** Optimization context (field/bank/slot widths) for one execute action;
    exposed for tests and tools that optimize actions directly. *)
val opt_context : Adl.Ast.arch -> string -> Opt.context

(** Build a model from ADL source text.
    @param opt_level offline optimization level 1-4 (default 4).
    @param verify run the {!Verify} SSA well-formedness checker after
    every optimization pass (default false).
    @raise Adl.Ast.Adl_error on parse or type errors.
    @raise Verify.Invalid if [verify] and a pass breaks an invariant. *)
val build : ?opt_level:int -> ?verify:bool -> string -> model

(** Look up one instruction's optimized SSA action.
    @raise Invalid_argument if the action does not exist. *)
val action : model -> string -> Ir.action

(** Total SSA statement count across all actions: the proxy for generated
    lines of code in the Sec. 3.6.1 experiment. *)
val total_size : model -> int

(** Decode one 32-bit instruction word through the generated decision
    tree. *)
val decode : model -> int64 -> Adl.Decode.decoded option
