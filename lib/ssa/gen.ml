(* Generator functions: translation-time partial evaluation of the
   optimized SSA (paper Sec. 2.2.3 and Fig. 7).

   Fixed operations (constants, instruction-field reads, and anything
   computed from them) are evaluated *now*, at JIT translation time; dynamic
   operations (register/memory accesses and computation over them) are
   emitted through the backend Emitter.

   Two strategies are used per instruction instance:
   - if all control flow inside the instruction is fixed (the common case),
     a single pass partially evaluates the behaviour along the one concrete
     path, unrolling fixed loops;
   - otherwise (e.g. conditional branches testing guest flags) the whole
     CFG is materialized into backend blocks, with temporaries carrying
     values across block boundaries.  Fixed *values* are still folded.

   The choice is made by a dry run against a null emitter, which raises
   [Emitter.Dynamic_control_flow] on the first dynamic branch. *)

module Builtins = Adl.Builtins
module Eval = Adl.Eval

type 'v value = Fixed of int64 | Dyn of 'v

let materialize (em : 'v Emitter.t) = function Fixed c -> em.Emitter.const c | Dyn v -> v

exception Unsupported of string

(* Evaluate one SSA statement given accessors for values and variables. *)
let eval_inst (em : 'v Emitter.t) ~field ~get ~set ~getvar ~setvar (i : Ir.inst) =
  let open Emitter in
  let mat v = materialize em v in
  match i.Ir.desc with
  | Ir.Const c -> set i.Ir.id (Fixed c)
  | Ir.Struct f -> set i.Ir.id (Fixed (field f))
  | Ir.Binary (op, signed, a, b) -> (
    match (get a, get b) with
    | Fixed x, Fixed y -> set i.Ir.id (Fixed (Eval.binop op ~signed x y))
    | va, vb -> set i.Ir.id (Dyn (em.binary op ~signed (mat va) (mat vb))))
  | Ir.Unary (op, a) -> (
    match get a with
    | Fixed x -> set i.Ir.id (Fixed (Eval.unop op x))
    | Dyn v -> set i.Ir.id (Dyn (em.unary op v)))
  | Ir.Normalize (bits, signed, a) -> (
    match get a with
    | Fixed x -> set i.Ir.id (Fixed (Eval.normalize (Adl.Ast.Tint { bits; signed }) x))
    | Dyn v -> set i.Ir.id (Dyn (em.normalize ~bits ~signed v)))
  | Ir.Select (c, t, f) -> (
    match get c with
    | Fixed x -> set i.Ir.id (get (if x <> 0L then t else f))
    | Dyn vc -> set i.Ir.id (Dyn (em.select vc (mat (get t)) (mat (get f)))))
  | Ir.Intrinsic (name, args) -> (
    let vals = List.map get args in
    let all_fixed = List.for_all (function Fixed _ -> true | Dyn _ -> false) vals in
    let pure =
      match Builtins.find name with
      | Some { bi_kind = Builtins.Pure; _ } -> true
      | _ -> false
    in
    let folded =
      if pure && all_fixed then
        Eval.builtin name (List.map (function Fixed c -> c | Dyn _ -> assert false) vals)
      else None
    in
    match folded with
    | Some v -> set i.Ir.id (Fixed v)
    | None -> set i.Ir.id (Dyn (em.intrinsic name (List.map mat vals))))
  | Ir.Bank_read (bank, idx) -> (
    match get idx with
    | Fixed ix -> set i.Ir.id (Dyn (em.load_bankreg ~bank ~index:(Int64.to_int ix)))
    | Dyn _ -> raise (Unsupported "dynamic register-bank index"))
  | Ir.Bank_write (bank, idx, v) -> (
    match get idx with
    | Fixed ix -> em.store_bankreg ~bank ~index:(Int64.to_int ix) (mat (get v))
    | Dyn _ -> raise (Unsupported "dynamic register-bank index"))
  | Ir.Reg_read slot -> set i.Ir.id (Dyn (em.load_reg ~slot))
  | Ir.Reg_write (slot, v) -> em.store_reg ~slot (mat (get v))
  | Ir.Var_read v -> set i.Ir.id (getvar v)
  | Ir.Var_write (v, x) -> setvar v (get x)
  | Ir.Mem_read (bits, a) -> set i.Ir.id (Dyn (em.mem_read ~bits (mat (get a))))
  | Ir.Mem_write (bits, a, v) -> em.mem_write ~bits ~addr:(mat (get a)) ~value:(mat (get v))
  | Ir.Pc_read -> set i.Ir.id (Dyn (em.load_pc ()))
  | Ir.Pc_write v -> em.store_pc (mat (get v))
  | Ir.Coproc_read idx -> set i.Ir.id (Dyn (em.coproc_read (mat (get idx))))
  | Ir.Coproc_write (idx, v) -> em.coproc_write (mat (get idx)) (mat (get v))
  | Ir.Effect (name, args) -> em.effect name (List.map (fun a -> mat (get a)) args)
  | Ir.Phi _ -> raise (Unsupported "phi node reached the generator")

(* --- strategy 1: fully fixed control flow ---------------------------------- *)

let run_fixed (em : 'v Emitter.t) (action : Ir.action) ~field =
  let env : (Ir.id, 'v value) Hashtbl.t = Hashtbl.create 64 in
  let vars : (int, 'v value) Hashtbl.t = Hashtbl.create 8 in
  let get id = try Hashtbl.find env id with Not_found -> Fixed 0L in
  let set id v = Hashtbl.replace env id v in
  let getvar v = try Hashtbl.find vars v with Not_found -> Fixed 0L in
  let setvar v x = Hashtbl.replace vars v x in
  let fuel = ref 100_000 in
  let cur = ref (Some (Ir.entry_block action)) in
  while !cur <> None do
    let b = Option.get !cur in
    decr fuel;
    if !fuel <= 0 then raise (Unsupported "fixed loop did not terminate during unrolling");
    List.iter (eval_inst em ~field ~get ~set ~getvar ~setvar) b.Ir.insts;
    match b.Ir.term with
    | Ir.Ret -> cur := None
    | Ir.Jump t -> cur := Some (Ir.find_block action t)
    | Ir.Branch (c, t, f) -> (
      match get c with
      | Fixed v -> cur := Some (Ir.find_block action (if v <> 0L then t else f))
      | Dyn _ -> raise Emitter.Dynamic_control_flow)
  done

(* --- strategy 2: dynamic control flow --------------------------------------- *)

let run_general (em : 'v Emitter.t) (action : Ir.action) ~field =
  let open Emitter in
  (* Context-free constants: values (and variables) whose contents are
     known at translation time regardless of the runtime path - constants,
     instruction fields, pure computation over them, and variables whose
     every write stores the same such constant.  Essential at low offline
     optimization levels, where register-bank indices still flow through
     helper-parameter variables. *)
  let defs = Hashtbl.create 64 in
  List.iter
    (fun b -> List.iter (fun i -> Hashtbl.replace defs i.Ir.id i.Ir.desc) b.Ir.insts)
    action.Ir.blocks;
  let var_writes = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.Ir.desc with
          | Ir.Var_write (v, x) ->
            Hashtbl.replace var_writes v (x :: (try Hashtbl.find var_writes v with Not_found -> []))
          | _ -> ())
        b.Ir.insts)
    action.Ir.blocks;
  let cf_memo : (Ir.id, int64 option) Hashtbl.t = Hashtbl.create 64 in
  let rec cf_value depth id : int64 option =
    if depth > 64 then None
    else
      match Hashtbl.find_opt cf_memo id with
      | Some r -> r
      | None ->
        Hashtbl.replace cf_memo id None (* cycle guard *);
        let r =
          match Hashtbl.find_opt defs id with
          | Some (Ir.Const c) -> Some c
          | Some (Ir.Struct f) -> Some (field f)
          | Some (Ir.Binary (op, signed, a, b)) -> (
            match (cf_value (depth + 1) a, cf_value (depth + 1) b) with
            | Some x, Some y -> Some (Eval.binop op ~signed x y)
            | _ -> None)
          | Some (Ir.Unary (op, a)) -> Option.map (Eval.unop op) (cf_value (depth + 1) a)
          | Some (Ir.Normalize (bits, signed, a)) ->
            Option.map (Eval.normalize (Adl.Ast.Tint { bits; signed })) (cf_value (depth + 1) a)
          | Some (Ir.Select (c, t, f)) -> (
            match cf_value (depth + 1) c with
            | Some x -> cf_value (depth + 1) (if x <> 0L then t else f)
            | None -> None)
          | Some (Ir.Var_read v) -> cf_var (depth + 1) v
          | _ -> None
        in
        Hashtbl.replace cf_memo id r;
        r
  and cf_var depth v =
    match Hashtbl.find_opt var_writes v with
    | Some (w :: ws) -> (
      match cf_value depth w with
      | Some c when List.for_all (fun w' -> cf_value depth w' = Some c) ws -> Some c
      | _ -> None)
    | _ -> None
  in
  (* Which block defines each value, to route cross-block uses through
     temporaries. *)
  let def_block = Hashtbl.create 64 in
  List.iter
    (fun b -> List.iter (fun i -> Hashtbl.replace def_block i.Ir.id b.Ir.bid) b.Ir.insts)
    action.Ir.blocks;
  let cross = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let check id =
        match Hashtbl.find_opt def_block id with
        | Some d when d <> b.Ir.bid -> Hashtbl.replace cross id ()
        | _ -> ()
      in
      List.iter (fun i -> List.iter check (Ir.operands i.Ir.desc)) b.Ir.insts;
      match b.Ir.term with Ir.Branch (c, _, _) -> check c | _ -> ())
    action.Ir.blocks;
  let val_temps = Hashtbl.create 16 in
  let temp_of_val id =
    match Hashtbl.find_opt val_temps id with
    | Some t -> t
    | None ->
      let t = em.new_temp () in
      Hashtbl.replace val_temps id t;
      t
  in
  let var_temps = Hashtbl.create 8 in
  let temp_of_var v =
    match Hashtbl.find_opt var_temps v with
    | Some t -> t
    | None ->
      let t = em.new_temp () in
      Hashtbl.replace var_temps v t;
      t
  in
  let labels = Hashtbl.create 8 in
  List.iter (fun b -> Hashtbl.replace labels b.Ir.bid (em.create_block ())) action.Ir.blocks;
  let exit_label = em.create_block () in
  let label bid = Hashtbl.find labels bid in
  em.jump (label (Ir.entry_block action).Ir.bid);
  List.iter
    (fun b ->
      em.set_block (label b.Ir.bid);
      let env = Hashtbl.create 32 in
      let get id =
        match Hashtbl.find_opt env id with
        | Some v -> v
        | None ->
          if Hashtbl.mem def_block id then Dyn (em.read_temp (temp_of_val id)) else Fixed 0L
      in
      let set id v =
        Hashtbl.replace env id v;
        if Hashtbl.mem cross id then em.write_temp (temp_of_val id) (materialize em v)
      in
      let getvar v =
        match cf_var 0 v with
        | Some c -> Fixed c
        | None -> Dyn (em.read_temp (temp_of_var v))
      in
      let setvar v x = em.write_temp (temp_of_var v) (materialize em x) in
      List.iter (eval_inst em ~field ~get ~set ~getvar ~setvar) b.Ir.insts;
      match b.Ir.term with
      | Ir.Ret -> em.jump exit_label
      | Ir.Jump t -> em.jump (label t)
      | Ir.Branch (c, t, f) -> (
        match get c with
        | Fixed v -> em.jump (label (if v <> 0L then t else f))
        | Dyn d -> em.branch d (label t) (label f)))
    action.Ir.blocks;
  em.set_block exit_label

(* --- entry point -------------------------------------------------------------- *)

(* Probe with the null emitter to learn whether this instruction instance
   has fixed control flow; the probe also fully resolves fixed loops. *)
let has_fixed_control_flow (action : Ir.action) ~field =
  try
    run_fixed Emitter.null action ~field;
    true
  with Emitter.Dynamic_control_flow -> false

(* Translate one decoded instruction through the backend.  [inc_pc] is the
   instruction size when the decode entry does not end the block (paper
   Fig. 7: `if (!insn.end_of_block) emitter.inc_pc(4)`). *)
let translate (em : 'v Emitter.t) (action : Ir.action) ~field ~inc_pc =
  if has_fixed_control_flow action ~field then run_fixed em action ~field
  else run_general em action ~field;
  match inc_pc with Some n -> em.Emitter.inc_pc n | None -> ()

(* Translate each decoded instruction into its own freshly created backend
   (the translation validator's reference oracle: one unoptimized emission
   per instruction, no cross-instruction DAG memoization or collapse).
   [fresh] supplies a new emitter and a finalizer returning the segment. *)
let translate_isolated ~fresh items =
  List.map
    (fun (action, field, inc_pc) ->
      let em, finish = fresh () in
      translate em action ~field ~inc_pc;
      finish ())
    items
