(** PA-sharded, published-immutable code cache.

    The engine's code cache, restructured for concurrent JIT: keys are
    [(guest PA, exception level, mmu-on)] triples, entries are sharded
    by guest-physical page, and each shard is an {!Atomic.t} holding an
    immutable persistent-map state.  {!lookup} is lock-free (one atomic
    read + map find); {!publish} and {!invalidate_page} are shard-local
    CAS loops.  Per-page invalidation generations tombstone in-flight
    translation jobs: a publisher holding a generation token from
    enqueue time uses {!publish_if}, which refuses the install when the
    page was invalidated (SMC) in between. *)

type key = int64 * int * bool

type 'a t

(** [create ?shards ()] — [shards] is rounded up to a power of two
    (default 16). *)
val create : ?shards:int -> unit -> 'a t

val n_shards : 'a t -> int

(** Lock-free: one [Atomic.get] plus a persistent-map find. *)
val lookup : 'a t -> key -> 'a option

(** Unconditional publish (the synchronous engine path, and installs
    whose freshness the caller has already re-verified). *)
val publish : 'a t -> key -> 'a -> unit

(** [publish_if t key ~gen v] installs [v] iff the page's invalidation
    generation still equals [gen] (as read by {!page_gen} at enqueue
    time); returns whether the install happened. *)
val publish_if : 'a t -> key -> gen:int -> 'a -> bool

(** Current invalidation generation of a guest-physical page (0 until
    first invalidated). *)
val page_gen : 'a t -> int64 -> int

(** Remove every translation on the page, bump its generation
    (unconditionally — tombstoning in-flight jobs needs the bump even
    when nothing is published), and return the removed entries. *)
val invalidate_page : 'a t -> int64 -> 'a list

(** Keys published on one page (snapshot). *)
val page_keys : 'a t -> int64 -> key list

(** Iteration over per-shard snapshots: sees every entry published
    before the call on a quiescent cache; per-shard-consistent under
    concurrency. *)
val iter : (key -> 'a -> unit) -> 'a t -> unit

val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** All published keys (per-shard snapshot). *)
val keys : 'a t -> key list

val length : 'a t -> int
