(* Disk-backed AOT translation cache: the payoff consumer of the
   relocation-cleanliness certificates (Hostir.Reloc).

   A translation that Reloc certified is position- and environment-
   independent, so its encoded bytes can be persisted and reinstalled
   into a different boot's code cache with only the numbered chain/exit
   sites re-bound (the engine allocates a fresh [t_exits] array; the
   byte stream itself needs no patching — that is exactly what the
   certificate proves).  Entries are keyed by the certificate tuple:
   guest content (verified byte-for-byte against guest memory at lookup
   time), MMU regime (el + mmu-on), and the optimisation configuration
   (a signature over every config field that can change generated code).

   Trust model: the cache directory is data, not code.  Nothing is
   installed from disk without (a) the guest source bytes matching the
   bytes currently in guest memory, (b) the stored content hash matching
   a re-hash of the stored host code, and (c) a full re-run of
   [Reloc.certify] over the loaded bytes — a corrupted or hand-edited
   entry is rejected and counted, never executed. *)

let magic = "CAOT1\n"

type entry = {
  e_kind : int; (* 0 = tier-0 block, 1 = region unit, 2 = template-stitched block *)
  e_va : int64; (* head VA the code was translated from *)
  e_pa : int64; (* head PA (content identity of the placement) *)
  e_el : int;
  e_mmu : bool;
  e_cfg : int64; (* optimisation-config signature *)
  e_members : (int64 * int) array; (* (member va, guest code bytes) *)
  e_guest : bytes; (* member guest bytes, concatenated, for verification *)
  e_n_slots : int;
  e_n_exits : int; (* numbered chain/exit sites to re-bind on install *)
  e_n_guest : int; (* guest instructions covered *)
  e_n_host : int; (* host instructions in the stream *)
  e_code : bytes; (* the certified encoded translation *)
  e_hash : int64; (* Reloc.hash64 of [e_code] *)
}

type stats = {
  mutable loaded : int; (* entries read from disk at open *)
  mutable malformed : int; (* unreadable files skipped at open *)
}

type t = {
  dir : string;
  index : (int * int64 * int64 * int * bool * int64, entry list ref) Hashtbl.t;
  stats : stats;
  (* The index and the store path are shared between the vCPU and JIT
     worker domains (concurrent AOT loads while a region job persists
     its output), so every index access and disk store runs under this
     lock.  Entries themselves are immutable once constructed. *)
  mu : Mutex.t;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let stats t = t.stats

let key_of e = (e.e_kind, e.e_va, e.e_pa, e.e_el, e.e_mmu, e.e_cfg)

(* --- serialization (explicit little-endian binary, no Marshal) ---------------- *)

let write_entry (buf : Buffer.t) (e : entry) =
  Buffer.add_string buf magic;
  Buffer.add_uint8 buf e.e_kind;
  Buffer.add_int64_le buf e.e_va;
  Buffer.add_int64_le buf e.e_pa;
  Buffer.add_uint8 buf e.e_el;
  Buffer.add_uint8 buf (if e.e_mmu then 1 else 0);
  Buffer.add_int64_le buf e.e_cfg;
  Buffer.add_uint16_le buf (Array.length e.e_members);
  Array.iter
    (fun (va, len) ->
      Buffer.add_int64_le buf va;
      Buffer.add_int32_le buf (Int32.of_int len))
    e.e_members;
  Buffer.add_int32_le buf (Int32.of_int (Bytes.length e.e_guest));
  Buffer.add_bytes buf e.e_guest;
  Buffer.add_int32_le buf (Int32.of_int e.e_n_slots);
  Buffer.add_int32_le buf (Int32.of_int e.e_n_exits);
  Buffer.add_int32_le buf (Int32.of_int e.e_n_guest);
  Buffer.add_int32_le buf (Int32.of_int e.e_n_host);
  Buffer.add_int32_le buf (Int32.of_int (Bytes.length e.e_code));
  Buffer.add_bytes buf e.e_code;
  Buffer.add_int64_le buf e.e_hash

exception Malformed of string

let read_entry (b : bytes) : entry =
  let pos = ref 0 in
  let len = Bytes.length b in
  let need n = if !pos + n > len then raise (Malformed "truncated entry") in
  let u8 () =
    need 1;
    let v = Bytes.get_uint8 b !pos in
    incr pos;
    v
  in
  let u16 () =
    need 2;
    let v = Bytes.get_uint16_le b !pos in
    pos := !pos + 2;
    v
  in
  let i32 () =
    need 4;
    let v = Int32.to_int (Bytes.get_int32_le b !pos) in
    pos := !pos + 4;
    if v < 0 then raise (Malformed "negative length field");
    v
  in
  let i64 () =
    need 8;
    let v = Bytes.get_int64_le b !pos in
    pos := !pos + 8;
    v
  in
  let blob n =
    need n;
    let v = Bytes.sub b !pos n in
    pos := !pos + n;
    v
  in
  let m = String.length magic in
  need m;
  if Bytes.sub_string b 0 m <> magic then raise (Malformed "bad magic");
  pos := m;
  let e_kind = u8 () in
  if e_kind > 2 then raise (Malformed "bad kind");
  let e_va = i64 () in
  let e_pa = i64 () in
  let e_el = u8 () in
  let e_mmu = u8 () <> 0 in
  let e_cfg = i64 () in
  let n_members = u16 () in
  let e_members =
    Array.init n_members (fun _ ->
        let va = i64 () in
        let l = i32 () in
        (va, l))
  in
  let e_guest = blob (i32 ()) in
  if Bytes.length e_guest <> Array.fold_left (fun a (_, l) -> a + l) 0 e_members then
    raise (Malformed "member lengths disagree with guest blob");
  let e_n_slots = i32 () in
  let e_n_exits = i32 () in
  let e_n_guest = i32 () in
  let e_n_host = i32 () in
  let e_code = blob (i32 ()) in
  let e_hash = i64 () in
  if !pos <> len then raise (Malformed "trailing bytes");
  if not (Int64.equal (Hostir.Reloc.hash64 e_code) e_hash) then
    raise (Malformed "content hash mismatch");
  {
    e_kind;
    e_va;
    e_pa;
    e_el;
    e_mmu;
    e_cfg;
    e_members;
    e_guest;
    e_n_slots;
    e_n_exits;
    e_n_guest;
    e_n_host;
    e_code;
    e_hash;
  }

(* One file per entry, named by key + content so distinct code for the
   same site coexists; the hash covers everything identity-bearing. *)
let filename_of (e : entry) =
  let b = Buffer.create 64 in
  Buffer.add_int64_le b e.e_va;
  Buffer.add_int64_le b e.e_pa;
  Buffer.add_uint8 b e.e_kind;
  Buffer.add_uint8 b e.e_el;
  Buffer.add_uint8 b (if e.e_mmu then 1 else 0);
  Buffer.add_int64_le b e.e_cfg;
  Buffer.add_int64_le b (Hostir.Reloc.hash64 e.e_guest);
  Printf.sprintf "%016Lx-%016Lx.aot" (Hostir.Reloc.hash64 (Buffer.to_bytes b)) e.e_hash

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let add_index_unlocked t e =
  let k = key_of e in
  match Hashtbl.find_opt t.index k with
  | Some l -> if not (List.exists (fun e' -> Bytes.equal e'.e_code e.e_code) !l) then l := e :: !l
  | None -> Hashtbl.replace t.index k (ref [ e ])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

(* Open (creating if needed) a cache directory and load every entry into
   the in-memory index.  Unreadable or corrupted files are counted and
   skipped; they are re-verified again at install time anyway. *)
let open_dir (dir : string) : t =
  mkdir_p dir;
  let t =
    {
      dir;
      index = Hashtbl.create 64;
      stats = { loaded = 0; malformed = 0 };
      mu = Mutex.create ();
    }
  in
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare files;
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".aot" then
        match read_entry (read_file (Filename.concat dir f)) with
        | e ->
          add_index_unlocked t e;
          t.stats.loaded <- t.stats.loaded + 1
        | exception (Malformed _ | Sys_error _ | End_of_file) ->
          t.stats.malformed <- t.stats.malformed + 1)
    files;
  t

(* Candidate entries for a translation site; the engine still verifies
   guest bytes and re-certifies before installing any of them.  The
   returned list is a snapshot taken under the lock. *)
let candidates (t : t) ~kind ~va ~pa ~el ~mmu ~cfg : entry list =
  locked t (fun () ->
      match Hashtbl.find_opt t.index (kind, va, pa, el, mmu, cfg) with
      | Some l -> !l
      | None -> [])

(* Persist a certified entry: atomic tmp + rename, idempotent (the name
   is content-addressed, so an existing file is already this entry).
   Serialized under the lock so concurrent stores from worker installs
   can't interleave on the index or race the tmp file. *)
let store (t : t) (e : entry) : unit =
  locked t (fun () ->
      add_index_unlocked t e;
      let name = filename_of e in
      let path = Filename.concat t.dir name in
      if not (Sys.file_exists path) then begin
        let buf = Buffer.create (Bytes.length e.e_code + 256) in
        write_entry buf e;
        let tmp = Filename.concat t.dir ("." ^ name ^ ".tmp") in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> Buffer.output_buffer oc buf);
        Sys.rename tmp path
      end)

let entry_count (t : t) =
  locked t (fun () -> Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.index 0)
