(* The Captive DBT hypervisor engine (paper Sec. 2.3, 2.4, 2.6, 2.7).

   - Translations are produced by the four-phase pipeline: decode ->
     translate (generator functions over the invocation DAG) -> register
     allocation -> encode; each phase is timed for Fig. 20.
   - The code cache is indexed by guest *physical* address (plus exception
     level and MMU regime); guest page-table changes do not invalidate it.
   - Guest page tables are mapped onto host page tables on demand by the
     host-page-fault handler; guest user code runs in host ring 3.
   - Two host page-table sets cover the guest's lower (TTBR0) and upper
     (TTBR1) address spaces; generated code checks the VA split and
     switches sets under distinct PCIDs (Sec. 2.7.5).
   - Self-modifying code is caught by write-protecting host mappings of
     guest pages that contain translated code (Sec. 2.6). *)

module Exec = Hostir.Exec
module Encode = Hostir.Encode
module Dag = Hostir.Dag
module Regalloc = Hostir.Regalloc
module Hir = Hostir.Hir
module Machine = Hvm.Machine
module Cost = Hvm.Cost
module Ops = Guest.Ops
module Bits = Dbt_util.Bits

type config = {
  hw_fp : bool; (* hardware FP (Captive) vs softfloat helpers (Sec. 3.6.2) *)
  chaining : bool;
  pcid : bool; (* use PCIDs when switching address-space roots *)
  split_va_check : bool; (* 64-bit guest address-space split handling *)
  mem_size : int;
  max_block : int; (* maximum guest instructions per translation block *)
  sanitize : bool; (* shadow-oracle MMU invariant checking (Hvm.Sanitize) *)
  sanitize_every : int; (* extra periodic checkpoint every N translated blocks *)
  tiering : bool; (* tiered translation: profile tier-0 blocks, form hot regions *)
  templates : bool; (* tier minus one: template-stitched cold translation
                       (Hostir.Template); active only with [tiering], since
                       promotion is what buys back code quality *)
  hot_threshold : int; (* executions of a tier-0 block before promotion *)
  region_max_blocks : int; (* maximum members in one region (all on one page) *)
  promote : bool; (* region-scoped register promotion + memory redundancy elim *)
  promote_max_regs : int; (* register-file offsets cached per region *)
  (* symbolic translation validation (Hostir.Equiv): every accepted
     translation is re-derived as an unoptimized reference emission and
     checked for exit-point equivalence; any finding is a miscompile *)
  validate_translations : bool;
  validate_every : int; (* validate every Nth tier-0 block (regions: always) *)
  (* static obligation checking (Hostir.Absint): every translation the
     engine produces is analyzed at translate time — register-file
     offsets in-bounds and aligned, spill slots inside the frame,
     promoted-register discipline and writeback coverage *)
  analyze_translations : bool;
  (* the O4 absint-simplify region pass: fold branches with known
     conditions, delete cross-block dead definitions, drop redundant
     masks, strength-reduce division — on facts that only materialize
     after region flattening and promotion *)
  absint_simplify : bool;
  (* relocation-cleanliness certification (Hostir.Reloc): every encoded
     translation is analyzed at translate time — operands and control
     transfers classified relocatable or pinned, encoding determinism
     audited; any finding means the translation can't be persisted *)
  reloc_check : bool;
  (* persistent AOT translation cache directory: certified translations
     are stored here and reinstalled (guest bytes verified, certificate
     re-checked, chain/exit sites re-bound) instead of re-translated.
     Implies certification of every translation. *)
  aot_dir : string option;
  (* concurrent JIT (OCaml 5 domains): total domains the engine may use.
     1 = fully synchronous, bit-identical to the historical engine;
     N > 1 spawns N-1 JIT worker domains that execute region-formation
     jobs while the vCPU keeps running tier-0 code.  Not part of the
     AOT config signature: the generated code is identical either way. *)
  domains : int;
  (* deterministic schedule jitter for the stress harness: seeds a PRNG
     that perturbs when completed translation jobs are drained and
     installed, widening the publish/invalidate race window without
     giving up reproducibility. *)
  stress_seed : int64 option;
}

let default_config =
  {
    hw_fp = true;
    chaining = true;
    pcid = true;
    split_va_check = true;
    mem_size = 256 * 1024 * 1024;
    max_block = 64;
    sanitize = false;
    sanitize_every = 32;
    tiering = true;
    templates = true;
    hot_threshold = 64;
    region_max_blocks = 8;
    promote = true;
    promote_max_regs = 4;
    validate_translations = false;
    validate_every = 1;
    analyze_translations = false;
    absint_simplify = true;
    reloc_check = false;
    aot_dir = None;
    domains = 1;
    stress_seed = None;
  }

type phase_stats = {
  mutable t_decode : float;
  mutable t_translate : float;
  mutable t_regalloc : float;
  mutable t_encode : float;
  (* per-tier wall-time split of translation work: template stitching
     (tier -1), cold block pipeline (tier 0), region formation (tier 1);
     t_template covers mining + patching + stitching, the others cover
     the whole pipeline pass for their tier *)
  mutable t_template : float;
  mutable t_tier0 : float;
  mutable t_region : float;
  mutable blocks_translated : int;
  mutable guest_instrs_translated : int;
  mutable host_instrs_emitted : int;
  mutable host_bytes_emitted : int;
  mutable dead_marked : int;
  mutable spills : int;
  mutable blocks_executed : int;
  mutable chain_hits : int;
  mutable smc_invalidations : int;
  (* tiered translation *)
  mutable promotions : int; (* tier-0 blocks that crossed the hotness threshold *)
  mutable regions_formed : int; (* multi-block region translations built *)
  mutable region_blocks : int; (* total member blocks across formed regions *)
  mutable region_host_instrs : int; (* host instrs emitted for region units *)
  mutable region_entries : int; (* dispatches that entered a region unit *)
  mutable region_block_execs : int; (* member blocks executed inside regions *)
  mutable region_dead_stores : int; (* cross-block dead register-file stores removed *)
  (* register promotion / memory redundancy elimination (Promote) *)
  mutable rf_promoted : int; (* register-file offsets promoted across regions *)
  mutable region_wb_entries : int; (* writeback-map entries across regions *)
  mutable mem_loads_elided : int; (* Mem_lds satisfied by a previous load *)
  mutable stores_forwarded : int; (* Mem_lds satisfied by a previous store *)
  (* symbolic translation validation (Hostir.Equiv) *)
  mutable t_validate : float;
  mutable blocks_validated : int; (* tier-0 blocks checked against the oracle *)
  mutable regions_validated : int; (* tier-1 regions checked against the oracle *)
  mutable validation_findings : int; (* equivalence divergences (miscompiles) *)
  mutable validations_bounded : int; (* checks that hit a path/step bound *)
  (* static obligation checking + absint-simplify (Hostir.Absint) *)
  mutable t_analyze : float;
  mutable blocks_analyzed : int; (* tier-0 blocks obligation-checked *)
  mutable regions_analyzed : int; (* tier-1 regions obligation-checked *)
  mutable obligation_findings : int; (* static obligation violations *)
  mutable absint_branches_folded : int; (* Br with decided condition -> Jmp *)
  mutable absint_consts_folded : int; (* pure results proved constant *)
  mutable absint_masks_dropped : int; (* redundant masks/extensions elided *)
  mutable absint_divs_reduced : int; (* unsigned div/rem by 2^k reduced *)
  mutable absint_dead_deleted : int; (* cross-block dead definitions removed *)
  (* relocation-cleanliness certification (Hostir.Reloc) *)
  mutable t_reloc : float;
  mutable translate_cycles : int; (* simulated cycles charged to translation/AOT *)
  (* per-tier ledger split of [translate_cycles]: template installs
     (stitch + patch + kind-2 AOT loads) vs the full pipeline (cold
     blocks, regions, kind-0/1 AOT loads); the two always sum to
     [translate_cycles] *)
  mutable translate_cycles_template : int;
  mutable translate_cycles_pipeline : int;
  (* template tier (Hostir.Template) *)
  mutable template_blocks : int; (* blocks installed by template stitching *)
  mutable template_instrs : int; (* guest instructions those blocks cover *)
  mutable template_misses : int; (* instructions with no usable template *)
  mutable template_fallback_blocks : int; (* blocks that fell back to the cold pipeline *)
  mutable templates_mined : int; (* template variants mined this run *)
  mutable blocks_certified : int; (* tier-0 blocks certified relocation-clean *)
  mutable regions_certified : int; (* region units certified relocation-clean *)
  mutable reloc_findings : int; (* relocation-cleanliness violations *)
  (* persistent AOT translation cache (Aotcache) *)
  mutable aot_hits : int; (* translations installed from the cache *)
  mutable aot_misses : int; (* sites with no reusable entry *)
  mutable aot_stores : int; (* certified translations persisted *)
  mutable aot_rejects : int; (* disk entries refused (corrupt or flagged) *)
  (* concurrent JIT job accounting (domains > 1 only; all 0 when synchronous) *)
  mutable jobs_enqueued : int; (* region jobs handed to the worker pool *)
  mutable jobs_completed : int; (* worker results drained by the vCPU *)
  mutable jobs_installed : int; (* results published into the sharded cache *)
  mutable jobs_stale : int; (* results rejected at install: page generation or guest hash changed (SMC) *)
  mutable jobs_cancelled : int; (* queued jobs dropped by invalidate_page before a worker took them *)
  mutable jobs_dropped : int; (* enqueues refused because the bounded queue was full *)
}

let new_phase_stats () =
  {
    t_decode = 0.;
    t_translate = 0.;
    t_regalloc = 0.;
    t_encode = 0.;
    t_template = 0.;
    t_tier0 = 0.;
    t_region = 0.;
    blocks_translated = 0;
    guest_instrs_translated = 0;
    host_instrs_emitted = 0;
    host_bytes_emitted = 0;
    dead_marked = 0;
    spills = 0;
    blocks_executed = 0;
    chain_hits = 0;
    smc_invalidations = 0;
    promotions = 0;
    regions_formed = 0;
    region_blocks = 0;
    region_host_instrs = 0;
    region_entries = 0;
    region_block_execs = 0;
    region_dead_stores = 0;
    rf_promoted = 0;
    region_wb_entries = 0;
    mem_loads_elided = 0;
    stores_forwarded = 0;
    t_validate = 0.;
    blocks_validated = 0;
    regions_validated = 0;
    validation_findings = 0;
    validations_bounded = 0;
    t_analyze = 0.;
    blocks_analyzed = 0;
    regions_analyzed = 0;
    obligation_findings = 0;
    absint_branches_folded = 0;
    absint_consts_folded = 0;
    absint_masks_dropped = 0;
    absint_divs_reduced = 0;
    absint_dead_deleted = 0;
    t_reloc = 0.;
    translate_cycles = 0;
    translate_cycles_template = 0;
    translate_cycles_pipeline = 0;
    template_blocks = 0;
    template_instrs = 0;
    template_misses = 0;
    template_fallback_blocks = 0;
    templates_mined = 0;
    blocks_certified = 0;
    regions_certified = 0;
    reloc_findings = 0;
    aot_hits = 0;
    aot_misses = 0;
    aot_stores = 0;
    aot_rejects = 0;
    jobs_enqueued = 0;
    jobs_completed = 0;
    jobs_installed = 0;
    jobs_stale = 0;
    jobs_cancelled = 0;
    jobs_dropped = 0;
  }

(* Merge a stats delta that a pure translation job accumulated
   off-thread into the engine's totals.  Every field is additive. *)
let add_stats (dst : phase_stats) (d : phase_stats) =
  dst.t_decode <- dst.t_decode +. d.t_decode;
  dst.t_translate <- dst.t_translate +. d.t_translate;
  dst.t_regalloc <- dst.t_regalloc +. d.t_regalloc;
  dst.t_encode <- dst.t_encode +. d.t_encode;
  dst.t_template <- dst.t_template +. d.t_template;
  dst.t_tier0 <- dst.t_tier0 +. d.t_tier0;
  dst.t_region <- dst.t_region +. d.t_region;
  dst.blocks_translated <- dst.blocks_translated + d.blocks_translated;
  dst.guest_instrs_translated <- dst.guest_instrs_translated + d.guest_instrs_translated;
  dst.host_instrs_emitted <- dst.host_instrs_emitted + d.host_instrs_emitted;
  dst.host_bytes_emitted <- dst.host_bytes_emitted + d.host_bytes_emitted;
  dst.dead_marked <- dst.dead_marked + d.dead_marked;
  dst.spills <- dst.spills + d.spills;
  dst.blocks_executed <- dst.blocks_executed + d.blocks_executed;
  dst.chain_hits <- dst.chain_hits + d.chain_hits;
  dst.smc_invalidations <- dst.smc_invalidations + d.smc_invalidations;
  dst.promotions <- dst.promotions + d.promotions;
  dst.regions_formed <- dst.regions_formed + d.regions_formed;
  dst.region_blocks <- dst.region_blocks + d.region_blocks;
  dst.region_host_instrs <- dst.region_host_instrs + d.region_host_instrs;
  dst.region_entries <- dst.region_entries + d.region_entries;
  dst.region_block_execs <- dst.region_block_execs + d.region_block_execs;
  dst.region_dead_stores <- dst.region_dead_stores + d.region_dead_stores;
  dst.rf_promoted <- dst.rf_promoted + d.rf_promoted;
  dst.region_wb_entries <- dst.region_wb_entries + d.region_wb_entries;
  dst.mem_loads_elided <- dst.mem_loads_elided + d.mem_loads_elided;
  dst.stores_forwarded <- dst.stores_forwarded + d.stores_forwarded;
  dst.t_validate <- dst.t_validate +. d.t_validate;
  dst.blocks_validated <- dst.blocks_validated + d.blocks_validated;
  dst.regions_validated <- dst.regions_validated + d.regions_validated;
  dst.validation_findings <- dst.validation_findings + d.validation_findings;
  dst.validations_bounded <- dst.validations_bounded + d.validations_bounded;
  dst.t_analyze <- dst.t_analyze +. d.t_analyze;
  dst.blocks_analyzed <- dst.blocks_analyzed + d.blocks_analyzed;
  dst.regions_analyzed <- dst.regions_analyzed + d.regions_analyzed;
  dst.obligation_findings <- dst.obligation_findings + d.obligation_findings;
  dst.absint_branches_folded <- dst.absint_branches_folded + d.absint_branches_folded;
  dst.absint_consts_folded <- dst.absint_consts_folded + d.absint_consts_folded;
  dst.absint_masks_dropped <- dst.absint_masks_dropped + d.absint_masks_dropped;
  dst.absint_divs_reduced <- dst.absint_divs_reduced + d.absint_divs_reduced;
  dst.absint_dead_deleted <- dst.absint_dead_deleted + d.absint_dead_deleted;
  dst.t_reloc <- dst.t_reloc +. d.t_reloc;
  dst.translate_cycles <- dst.translate_cycles + d.translate_cycles;
  dst.translate_cycles_template <- dst.translate_cycles_template + d.translate_cycles_template;
  dst.translate_cycles_pipeline <- dst.translate_cycles_pipeline + d.translate_cycles_pipeline;
  dst.template_blocks <- dst.template_blocks + d.template_blocks;
  dst.template_instrs <- dst.template_instrs + d.template_instrs;
  dst.template_misses <- dst.template_misses + d.template_misses;
  dst.template_fallback_blocks <- dst.template_fallback_blocks + d.template_fallback_blocks;
  dst.templates_mined <- dst.templates_mined + d.templates_mined;
  dst.blocks_certified <- dst.blocks_certified + d.blocks_certified;
  dst.regions_certified <- dst.regions_certified + d.regions_certified;
  dst.reloc_findings <- dst.reloc_findings + d.reloc_findings;
  dst.aot_hits <- dst.aot_hits + d.aot_hits;
  dst.aot_misses <- dst.aot_misses + d.aot_misses;
  dst.aot_stores <- dst.aot_stores + d.aot_stores;
  dst.aot_rejects <- dst.aot_rejects + d.aot_rejects;
  dst.jobs_enqueued <- dst.jobs_enqueued + d.jobs_enqueued;
  dst.jobs_completed <- dst.jobs_completed + d.jobs_completed;
  dst.jobs_installed <- dst.jobs_installed + d.jobs_installed;
  dst.jobs_stale <- dst.jobs_stale + d.jobs_stale;
  dst.jobs_cancelled <- dst.jobs_cancelled + d.jobs_cancelled;
  dst.jobs_dropped <- dst.jobs_dropped + d.jobs_dropped

type translation = {
  t_key : int64 * int * bool;
  t_va : int64; (* VA it was translated from (for per-block statistics) *)
  t_program : Encode.program;
  t_n_guest : int;
  t_n_host : int;
  t_bytes : int;
  mutable t_chain : (int64 * int * translation) option; (* expected (va, el) -> target *)
  mutable t_exec_count : int;
  mutable t_cycles : int;
  (* tiered translation *)
  mutable t_tier : int;
      (* -1 = template-stitched block (profiled like tier 0);
         0 = profiled tier-0 block; 1 = promoted/region member *)
  t_members : int; (* 1 for plain blocks; number of member blocks for regions *)
  mutable t_succs : (int64 * int * int) list; (* bounded (va, el, count) profile *)
  (* Per-exit-site chain edges of a region unit, indexed by exit slot - 1:
     each member's dispatch chunk exits through its own slot, so each exit
     site patches to its own stable successor (classic trace-exit
     chaining) instead of flapping a single shared edge.  [||] for plain
     blocks, which keep the single [t_chain] edge. *)
  t_exits : (int64 * int * translation) option array;
}

(* --- concurrent JIT: pure translation jobs on worker domains --------------------- *)

(* Everything the pure job runner may read: immutable configuration
   captured at engine creation.  A worker domain never touches the
   engine record, the machine, or live guest memory — translation is a
   function (guest bytes, regime, config) -> (encoded program, stats). *)
type jit_env = {
  je_guest : Ops.ops;
  je_config : config;
  je_n_helpers : int; (* helper symbol table size, for Reloc env bounds *)
  je_rf_bytes : int; (* guest register file size, for Reloc env bounds *)
}

type member_desc = {
  md_va : int64;
  md_off : int; (* byte offset of the member's code in the page snapshot *)
  md_succs : int64 list; (* profiled successor VAs, hottest first *)
}

(* A region-formation job: guest-PA range + EL/MMU regime in, certified
   encoded program out.  The guest bytes travel as a snapshot of the
   head's page taken at enqueue time (regions never cross a page), so
   the job stays pure even while the vCPU keeps mutating guest memory. *)
type region_request = {
  rq_head_va : int64;
  rq_pa_page : int64;
  rq_el : int;
  rq_mmu : bool;
  rq_members : member_desc list;
  rq_snapshot : bytes; (* the head page's 4 KiB at enqueue time *)
}

(* What the worker hands back: the encoded program plus the stats delta
   and capped finding logs it accumulated, merged on the vCPU at
   install time. *)
type region_result = {
  r_program : Encode.program;
  r_code : bytes;
  r_cert : Hostir.Reloc.certificate option;
  r_n_guest : int;
  r_n_host : int;
  r_n_slots : int;
  r_n_exits : int;
  r_stats : phase_stats;
  r_validation_log : (string * string) list;
  r_analysis_log : (string * string) list;
  r_reloc_log : (string * string) list;
}

type job_outcome = R_ok of region_result | R_exn of exn

type region_job = {
  j_req : region_request; (* the pure part: all a worker reads *)
  j_head : translation; (* vCPU-side records, for install bookkeeping only *)
  j_members : translation list;
  j_gen : int; (* code-cache page generation at enqueue: the tombstone token *)
  j_guest_hash : int64; (* Reloc.hash64 over the members' guest bytes at enqueue *)
  mutable j_outcome : job_outcome option; (* written by the worker under the pool lock *)
}

(* Bounded work queue + completion list; one mutex covers both (the
   contention is one vCPU against a few workers at region-formation
   granularity). *)
type pool = {
  p_mu : Mutex.t;
  p_cv : Condition.t;
  mutable p_pending : region_job list; (* FIFO, newest last *)
  mutable p_done : region_job list; (* completion order, newest last *)
  mutable p_stop : bool;
  mutable p_domains : unit Domain.t list;
}

let job_queue_depth = 16

type t = {
  guest : Ops.ops;
  config : config;
  machine : Machine.t;
  mutable ctx : Exec.ctx;
  (* The code cache: PA-sharded, published-immutable (Codecache).  The
     vCPU is the only publisher and invalidator; worker domains never
     touch it — they hand results back and the vCPU installs them. *)
  cache : translation Codecache.t;
  protected : (int64, unit) Hashtbl.t; (* guest phys pages holding code *)
  mappings : (int64, (int * int64) list ref) Hashtbl.t; (* phys page -> (as, masked va page) *)
  roots : int64 array; (* host page-table roots: [|low; high|] *)
  mutable current_as : int;
  itlb : (int64 * int * bool, int64) Hashtbl.t; (* fetch va page -> pa page *)
  sanitizer : Hvm.Sanitize.t option;
  stats : phase_stats;
  (* devices *)
  uart : Hvm.Device.Uart.state;
  timer : Hvm.Device.Timer.state;
  syscon : Hvm.Device.Syscon.state;
  (* Optional fault/transition tracing for debugging guest bring-up.
     Per-engine so a traced run doesn't mute tracing for engines created
     later in the same process. *)
  tracing : bool;
  mutable trace_events : int;
  (* symbolic translation validation *)
  mutable validate_tick : int; (* tier-0 sampling counter (validate_every) *)
  mutable validation_log : (string * string) list; (* (context, detail), capped *)
  (* static obligation checking *)
  mutable analysis_log : (string * string) list; (* (context, finding), capped *)
  (* relocation-cleanliness certification + AOT cache *)
  aot : Aotcache.t option;
  mutable reloc_log : (string * string) list; (* (context, finding), capped *)
  (* concurrent JIT *)
  jenv : jit_env;
  mutable pool : pool option; (* spawned on first enqueue when domains > 1 *)
  stress_prng : Dbt_util.Prng.t option; (* drain-schedule jitter (stress_seed) *)
  (* template tier: the per-guest template table (mined lazily, so it
     doubles as a warm-up memo of the offline mine-templates artifact)
     and the per-opcode miss table behind the coverage report *)
  mutable templates : Hostir.Template.t option;
  template_miss : (string, int) Hashtbl.t;
}

let now () = Unix.gettimeofday ()

let trace e fmt =
  if e.tracing && e.trace_events < 400 then begin
    e.trace_events <- e.trace_events + 1;
    Printf.eprintf fmt
  end
  else Printf.ifprintf stderr fmt

(* --- engine construction ------------------------------------------------------ *)

let as_tag_value = function 0 -> 0L | _ -> 0x1FFFFL (* va >> 47 for each half *)

let make_machine config =
  let intc = Hvm.Device.Intc.create () in
  let uart = Hvm.Device.Uart.create () in
  let timer = Hvm.Device.Timer.create intc in
  let syscon = Hvm.Device.Syscon.create () in
  let devices =
    [
      Hvm.Device.Intc.device intc;
      Hvm.Device.Uart.device uart;
      Hvm.Device.Timer.device timer;
      Hvm.Device.Syscon.device syscon;
    ]
  in
  let machine = Machine.create ~mem_size:config.mem_size ~devices ~intc () in
  (machine, uart, timer, syscon)

let lower_intrinsic config name : Dag.lowering =
  let is_fp = String.length name > 2 && (String.sub name 0 2 = "fp" || String.length name > 4 && String.sub name 0 4 = "sint" || String.sub name 0 4 = "uint") in
  if (not config.hw_fp) && is_fp then
    match Common.softfloat_index name with Some h -> Dag.L_helper h | None -> Dag.L_inline
  else Dag.L_inline

let rec create ?(config = default_config) (guest : Ops.ops) : t =
  let machine, uart, timer, syscon = make_machine config in
  machine.Machine.paging <- true;
  let roots = [| Hvm.Palloc.alloc machine.Machine.palloc; Hvm.Palloc.alloc machine.Machine.palloc |] in
  machine.Machine.cr3 <- roots.(0);
  let engine_ref = ref None in
  let engine () = Option.get !engine_ref in
  let sys ctx = Common.sys_ctx guest ctx in
  let charge_int ctx = Machine.charge ctx.Exec.machine Cost.soft_interrupt in
  let helpers = Array.make (Common.first_softfloat + List.length Common.softfloat_names)
      { Exec.fn = (fun _ _ -> 0L); cost = 0 } in
  helpers.(Common.h_coproc_read) <-
    { Exec.fn = (fun ctx args -> guest.Ops.coproc_read (sys ctx) args.(0)); cost = 30 };
  helpers.(Common.h_coproc_write) <-
    {
      Exec.fn =
        (fun ctx args ->
          charge_int ctx;
          (match guest.Ops.coproc_write (sys ctx) args.(0) args.(1) with
          | Ops.Ce_none -> ()
          | Ops.Ce_mmu_changed | Ops.Ce_tlb_flush ->
            let e = engine () in
            flush_host_mappings e);
          0L);
      cost = 30;
    };
  (* Guest exception entry/return is a direct transfer inside the
     ring-0 execution engine - no software interrupt needed. *)
  helpers.(Common.h_take_exception) <-
    {
      Exec.fn =
        (fun ctx args ->
          poison_regions (engine ());
          guest.Ops.take_exception (sys ctx) ~ec:args.(0) ~iss:args.(1);
          0L);
      cost = 60;
    };
  helpers.(Common.h_eret) <-
    {
      Exec.fn =
        (fun ctx _ ->
          poison_regions (engine ());
          guest.Ops.eret (sys ctx);
          0L);
      cost = 60;
    };
  helpers.(Common.h_tlb_flush) <-
    {
      Exec.fn =
        (fun ctx _ ->
          charge_int ctx;
          flush_host_mappings (engine ());
          0L);
      cost = 40;
    };
  helpers.(Common.h_tlb_flush_page) <-
    {
      Exec.fn =
        (fun ctx _args ->
          charge_int ctx;
          (* Single-page invalidation: conservatively flush everything. *)
          flush_host_mappings (engine ());
          0L);
      cost = 40;
    };
  helpers.(Common.h_halt) <- { Exec.fn = (fun _ _ -> raise (Machine.Powered_off 0)); cost = 0 };
  helpers.(Common.h_wfi) <-
    {
      Exec.fn =
        (fun ctx _ ->
          (* Fast-forward to the next timer event if one is pending. *)
          let e = engine () in
          let t = e.timer in
          if t.Hvm.Device.Timer.enabled && t.Hvm.Device.Timer.irq_enabled then
            Machine.charge ctx.Exec.machine (t.Hvm.Device.Timer.value + 1)
          else Machine.charge ctx.Exec.machine 1000;
          0L);
      cost = 10;
    };
  helpers.(Common.h_barrier) <- { Exec.fn = (fun _ _ -> 0L); cost = 0 };
  helpers.(Common.h_as_switch) <-
    {
      Exec.fn =
        (fun ctx args ->
          let e = engine () in
          let target_as = if args.(0) = 0L then 0 else 1 in
          e.current_as <- target_as;
          Machine.set_page_table ctx.Exec.machine ~root:e.roots.(target_as) ~pcid:target_as
            ~keep_tlb:e.config.pcid;
          ctx.Exec.regs.(Dag.as_tag_preg) <- as_tag_value target_as;
          trace e "SWITCH as=%d pc=%Lx\n%!" target_as ctx.Exec.pc;
          0L);
      cost = 5;
    };
  List.iteri
    (fun i name -> helpers.(Common.first_softfloat + i) <- Common.softfloat_helper name)
    Common.softfloat_names;
  let fault_handler ctx access va ~bits ~value = handle_fault (engine ()) ctx access va ~bits ~value in
  let ctx = Exec.create ~machine ~helpers ~fault_handler in
  let jenv =
    {
      je_guest = guest;
      je_config = config;
      je_n_helpers = Array.length helpers;
      je_rf_bytes = Bytes.length ctx.Exec.regfile;
    }
  in
  let e =
    {
      guest;
      config;
      machine;
      ctx;
      cache = Codecache.create ();
      protected = Hashtbl.create 64;
      mappings = Hashtbl.create 1024;
      roots;
      current_as = 0;
      itlb = Hashtbl.create 256;
      sanitizer = (if config.sanitize then Some (Hvm.Sanitize.create ()) else None);
      stats = new_phase_stats ();
      uart;
      timer;
      syscon;
      tracing = Sys.getenv_opt "CAPTIVE_TRACE" <> None;
      trace_events = 0;
      validate_tick = 0;
      validation_log = [];
      analysis_log = [];
      aot = Option.map Aotcache.open_dir config.aot_dir;
      reloc_log = [];
      jenv;
      pool = None;
      stress_prng = Option.map Dbt_util.Prng.create config.stress_seed;
      templates = None;
      template_miss = Hashtbl.create 32;
    }
  in
  engine_ref := Some e;
  guest.Ops.reset (sys ctx) ~entry:0L;
  e

(* A regime change (exception entry/return, MMU/TLB state change, SMC
   invalidation) poisons in-flight regions: tier-1 region translations
   test this host flag at every member-entry safepoint and bail out to
   the dispatcher, which re-validates (EL, MMU regime) itself.  Cleared
   on every block entry. *)
and poison_regions (e : t) = e.ctx.Exec.regs.(Hir.region_poison_preg) <- 1L

(* Invalidate all host page-table mappings of the guest halves (the
   paper's TLB-flush intercept: clear the low 256 PML4 entries of each
   set and flush the host TLB). *)
and flush_host_mappings (e : t) =
  poison_regions e;
  Array.iter (fun root -> Hvm.Pagetable.clear_low_half e.machine.Machine.mem e.machine.Machine.palloc ~root) e.roots;
  Hvm.Tlb.flush_all e.machine.Machine.tlb;
  Machine.charge e.machine Cost.tlb_flush;
  Hashtbl.reset e.mappings;
  Hashtbl.reset e.itlb;
  (match e.sanitizer with Some s -> Hvm.Sanitize.record_clear_mappings s | None -> ());
  sanitize_check e ~reason:"flush"

(* Shadow-oracle checkpoint (config.sanitize): sweep the real MMU state
   against the sanitizer's shadow.  Free by construction when off. *)
and sanitize_check (e : t) ~reason =
  match e.sanitizer with
  | Some s ->
    Hvm.Sanitize.check s ~machine:e.machine ~roots:e.roots
      ~code_keys:(Some (Codecache.keys e.cache)) ~reason
  | None -> ()

(* --- host page fault handling (Sec. 2.7.3) --------------------------------------- *)

and device_of e pa = Machine.find_device e.machine pa

and invalidate_page e phys_page =
  poison_regions e;
  (* Cancel in-flight region jobs translating from this page: a pending
     job was enqueued against the pre-write bytes.  Jobs already running
     on a worker domain can't be stopped mid-flight — their install is
     rejected instead, by the page-generation tombstone ([publish_if])
     and the guest-byte certificate hash re-check. *)
  (match e.pool with
  | None -> ()
  | Some p ->
    Mutex.lock p.p_mu;
    let cancelled, kept =
      List.partition (fun j -> Int64.equal j.j_req.rq_pa_page phys_page) p.p_pending
    in
    p.p_pending <- kept;
    Mutex.unlock p.p_mu;
    e.stats.jobs_cancelled <- e.stats.jobs_cancelled + List.length cancelled);
  (* [invalidate_page] bumps the page generation even when no key is
     published — the tombstone must outlive the cache contents. *)
  let removed = Codecache.invalidate_page e.cache phys_page in
  if removed <> [] then begin
    (* Unlink every chain edge targeting an invalidated translation: a
       chain hit bypasses the cache, so a surviving edge would re-enter
       stale code after self-modification (fatal for a region unit, whose
       members just got demoted). *)
    Codecache.iter
      (fun _ tr ->
        (match tr.t_chain with
        | Some (_, _, tgt) when List.memq tgt removed -> tr.t_chain <- None
        | _ -> ());
        Array.iteri
          (fun i edge ->
            match edge with
            | Some (_, _, tgt) when List.memq tgt removed -> tr.t_exits.(i) <- None
            | _ -> ())
          tr.t_exits)
      e.cache;
    (* Also the removed records' own outgoing edges: the dispatch loop may
       still hold one of them as its current block (a block that rewrote
       its own page), and must not chain onward into stale code. *)
    List.iter
      (fun tr ->
        tr.t_chain <- None;
        Array.fill tr.t_exits 0 (Array.length tr.t_exits) None)
      removed;
    e.stats.smc_invalidations <- e.stats.smc_invalidations + 1
  end;
  (* Static-analysis staleness audit: unlike chain edges, there is no
     per-translation analysis state to drop here.  Abstract facts and
     obligation findings are consumed at translate time (counters plus
     the capped [analysis_log]); helper effect summaries are pure
     functions of the helper index ([Effects.summarize]); neither is
     keyed by translation, so an invalidated page cannot leave a stale
     fact behind.  A re-translation after SMC re-runs the analyzer from
     scratch (regression-tested in test_engine). *)
  Hashtbl.remove e.protected phys_page;
  (match e.sanitizer with Some s -> Hvm.Sanitize.record_invalidate_page s ~pa_page:phys_page | None -> ());
  sanitize_check e ~reason:"invalidate"

and protect_page e phys_page =
  if not (Hashtbl.mem e.protected phys_page) then begin
    Hashtbl.replace e.protected phys_page ();
    (match e.sanitizer with Some s -> Hvm.Sanitize.record_protect_page s ~pa_page:phys_page | None -> ());
    (* Downgrade any existing writable host mapping of this guest page. *)
    match Hashtbl.find_opt e.mappings phys_page with
    | Some lst ->
      List.iter
        (fun (asid, va_page) ->
          let root = e.roots.(asid) in
          match fst (Hvm.Pagetable.walk e.machine.Machine.mem ~root va_page) with
          | Some (pte_addr, pte) when Int64.logand pte Hvm.Pagetable.pte_present <> 0L ->
            let flags = Hvm.Pagetable.flags_of_bits pte in
            Hvm.Pagetable.protect e.machine.Machine.mem ~root va_page
              { flags with Hvm.Pagetable.writable = false };
            ignore pte_addr;
            Hvm.Tlb.flush_page e.machine.Machine.tlb (Int64.shift_right_logical va_page 12)
          | _ -> ())
        !lst
    | None -> ()
  end

and handle_fault (e : t) ctx (access : Machine.access) va ~bits ~value : Exec.fault_response =
  trace e "FAULT va=%Lx access=%s as=%d ring=%d pc=%Lx tag=%Lx\n%!" va
    (match access with Machine.Read -> "R" | Machine.Write -> "W" | Machine.Exec -> "X")
    e.current_as e.machine.Machine.ring ctx.Exec.pc ctx.Exec.regs.(Dag.as_tag_preg);
  let sys = Common.sys_ctx e.guest ctx in
  (* Reconstruct the full guest VA from the masked lower-half address. *)
  let gva = if e.current_as = 1 then Int64.logor va 0xFFFF_8000_0000_0000L else va in
  match e.guest.Ops.mmu_translate sys ~access:(Common.access_of access) gva with
  | Error fault ->
    Machine.charge e.machine Cost.guest_fault_bookkeeping;
    sanitize_check e ~reason:"guest-fault";
    e.guest.Ops.data_abort sys ~va:gva ~access:(Common.access_of access) ~fault;
    raise Ops.Guest_trap
  | Ok (pa, perms) -> (
    let el = e.guest.Ops.privilege_level sys in
    let allowed =
      (el > 0 || perms.Ops.puser)
      && (access <> Machine.Write || perms.Ops.pw)
    in
    if not allowed then begin
      Machine.charge e.machine Cost.guest_fault_bookkeeping;
      sanitize_check e ~reason:"guest-fault";
      e.guest.Ops.data_abort sys ~va:gva ~access:(Common.access_of access)
        ~fault:(Ops.Gf_permission 3);
      raise Ops.Guest_trap
    end;
    match device_of e pa with
    | Some d ->
      (* MMIO: emulated by the hypervisor (an exit from the HVM). *)
      Machine.charge e.machine Cost.soft_interrupt;
      Machine.sync_devices e.machine;
      let off = Int64.to_int (Int64.sub pa d.Hvm.Device.base) in
      (match access with
      | Machine.Write ->
        d.Hvm.Device.write off bits (Option.value value ~default:0L);
        Exec.Mmio_done
      | Machine.Read | Machine.Exec -> Exec.Mmio_value (d.Hvm.Device.read off bits))
    | None ->
      let phys_page = Bits.align_down pa 4096 in
      let va_page = Bits.align_down va 4096 in
      (* Self-modifying code: a permitted write to a protected code page
         invalidates that page's translations and restores write access. *)
      if access = Machine.Write && Hashtbl.mem e.protected phys_page then
        invalidate_page e phys_page;
      let writable = perms.Ops.pw && not (Hashtbl.mem e.protected phys_page) in
      let flags =
        {
          Hvm.Pagetable.writable;
          user = perms.Ops.puser;
          executable = perms.Ops.px;
        }
      in
      let root = e.roots.(e.current_as) in
      Hvm.Pagetable.map e.machine.Machine.mem e.machine.Machine.palloc ~root va_page phys_page flags;
      (* The PTE just changed: shoot down any stale hardware-TLB entry
         for this page, or the retry re-faults through the old
         translation forever — e.g. an SMC write to a code page that was
         previously read (TLB-resident, read-only) and has just been
         remapped writable. *)
      Hvm.Tlb.flush_page e.machine.Machine.tlb (Int64.shift_right_logical va_page 12);
      (let lst =
         match Hashtbl.find_opt e.mappings phys_page with
         | Some l -> l
         | None ->
           let l = ref [] in
           Hashtbl.replace e.mappings phys_page l;
           l
       in
       if not (List.mem (e.current_as, va_page) !lst) then lst := (e.current_as, va_page) :: !lst);
      (match e.sanitizer with
      | Some s -> Hvm.Sanitize.record_map s ~asid:e.current_as ~va_page ~pa_page:phys_page ~flags
      | None -> ());
      sanitize_check e ~reason:"fault";
      Exec.Retry)

(* --- instruction fetch and translation -------------------------------------------- *)

let fetch_translate (e : t) sys va : (int64, unit) result =
  (* Translate a fetch VA to PA via the guest MMU; takes the guest
     instruction-abort path on failure. *)
  match e.guest.Ops.mmu_translate sys ~access:Ops.Afetch va with
  | Error fault ->
    e.guest.Ops.insn_abort sys ~va ~fault;
    Error ()
  | Ok (pa, perms) ->
    let el = e.guest.Ops.privilege_level sys in
    if (el = 0 && not perms.Ops.puser) || not perms.Ops.px then begin
      e.guest.Ops.insn_abort sys ~va ~fault:(Ops.Gf_permission 3);
      Error ()
    end
    else Ok pa

let field_of ~el (d : Adl.Decode.decoded) =
  let el = Int64.of_int el in
  fun name ->
    if name = "__el" then el
    else
      match List.assoc_opt name d.Adl.Decode.field_values with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "no field %s in %s" name d.Adl.Decode.name)

let field_fn (e : t) sys (d : Adl.Decode.decoded) =
  field_of ~el:(e.guest.Ops.privilege_level sys) d

(* Decode one guest basic block starting at [va]/[pa]; returns the
   decoded instructions in order, or [(..., true)] when the very first
   instruction is undefined (the caller emits an exception stub). *)
let decode_block (e : t) ~va ~pa : Adl.Decode.decoded list * bool =
  let model = e.guest.Ops.model in
  let decoded = ref [] in
  let n = ref 0 in
  let undefined_stub = ref false in
  let continue_ = ref true in
  while !continue_ do
    let insn_va = Int64.add va (Int64.of_int (4 * !n)) in
    let insn_pa = Int64.add pa (Int64.of_int (4 * !n)) in
    let word = Machine.phys_read e.machine ~bits:32 insn_pa in
    match Ssa.Offline.decode model word with
    | Some d ->
      decoded := d :: !decoded;
      incr n;
      if d.Adl.Decode.ends_block || !n >= e.config.max_block
         || Int64.logand insn_va 0xFFFL = 0xFFCL (* stop at page boundary *)
      then continue_ := false
    | None ->
      if !n = 0 then undefined_stub := true;
      continue_ := false
  done;
  (List.rev !decoded, !undefined_stub)

(* Pure decode from a page snapshot: mirrors [decode_block]'s stop
   conditions exactly, but reads the bytes captured at enqueue time —
   never live guest memory, which the vCPU may be mutating while the
   job runs on a worker domain.  [off] is the byte offset of [va]'s
   code within the snapshot page. *)
let decode_block_pure (je : jit_env) ~(snapshot : bytes) ~va ~off :
    Adl.Decode.decoded list * bool =
  let model = je.je_guest.Ops.model in
  let decoded = ref [] in
  let n = ref 0 in
  let undefined_stub = ref false in
  let continue_ = ref true in
  while !continue_ do
    let insn_va = Int64.add va (Int64.of_int (4 * !n)) in
    let word =
      Int64.logand 0xFFFF_FFFFL
        (Int64.of_int32 (Bytes.get_int32_le snapshot (off + (4 * !n))))
    in
    match Ssa.Offline.decode model word with
    | Some d ->
      decoded := d :: !decoded;
      incr n;
      if d.Adl.Decode.ends_block || !n >= je.je_config.max_block
         || Int64.logand insn_va 0xFFFL = 0xFFCL (* stop at page boundary *)
      then continue_ := false
    | None ->
      if !n = 0 then undefined_stub := true;
      continue_ := false
  done;
  (List.rev !decoded, !undefined_stub)

let dag_config_env (je : jit_env) ~mmu_on =
  {
    Dag.bank_offset = je.je_guest.Ops.bank_offset;
    slot_offset = je.je_guest.Ops.slot_offset;
    lower_intrinsic = lower_intrinsic je.je_config;
    effect_helper = Common.effect_helper_index;
    coproc_read_helper = Common.h_coproc_read;
    coproc_write_helper = Common.h_coproc_write;
    split_va_check = je.je_config.split_va_check && mmu_on;
    as_switch_helper = Common.h_as_switch;
  }

let dag_config_of (e : t) ~mmu_on = dag_config_env e.jenv ~mmu_on

(* The per-guest template table, created on first use (the Dag config
   helpers above are not in scope at engine construction). *)
let templates_of (e : t) : Hostir.Template.t =
  match e.templates with
  | Some tt -> tt
  | None ->
    let tt =
      Hostir.Template.create
        ~config:(fun ~mmu_on -> dag_config_of e ~mmu_on)
        ~rf_bytes:e.jenv.je_rf_bytes ~insn_size:e.guest.Ops.insn_size
    in
    e.templates <- Some tt;
    tt

(* Finding logs are capped: counters keep exact totals, the logs keep
   the first [log_cap] findings in discovery order. *)
let log_cap = 64

let append_capped (log : (string * string) list) (extra : (string * string) list) =
  List.fold_left (fun acc it -> if List.length acc < log_cap then acc @ [ it ] else acc) log extra

(* The [_into] recorders write to an explicit stats record and log ref
   instead of the engine, so the pure job runner can account its work
   into a private delta on a worker domain; the engine-side wrappers
   below keep the historical call shape for the synchronous paths. *)

(* Account one Equiv outcome: counters, plus a capped log of findings
   (full detail, for the validate subcommand's JSON report). *)
let record_validation_into ~(s : phase_stats) ~log ~what ~region (r : Hostir.Equiv.outcome) =
  if region then s.regions_validated <- s.regions_validated + 1
  else s.blocks_validated <- s.blocks_validated + 1;
  if not r.Hostir.Equiv.complete then s.validations_bounded <- s.validations_bounded + 1;
  if r.Hostir.Equiv.findings <> [] then begin
    s.validation_findings <- s.validation_findings + List.length r.Hostir.Equiv.findings;
    List.iter
      (fun (f : Hostir.Equiv.finding) ->
        if List.length !log < log_cap then
          log :=
            !log
            @ [ (Printf.sprintf "%s: %s" what f.Hostir.Equiv.f_name, f.Hostir.Equiv.f_detail) ])
      r.Hostir.Equiv.findings
  end

let record_validation (e : t) ~what ~region (r : Hostir.Equiv.outcome) =
  let log = ref e.validation_log in
  record_validation_into ~s:e.stats ~log ~what ~region r;
  e.validation_log <- !log

(* Account one static-analysis outcome: counters, plus a capped log of
   findings (full detail, for the analyze subcommand's JSON report). *)
let record_analysis_into ~(s : phase_stats) ~log ~what ~region
    (findings : Hostir.Absint.finding list) =
  if region then s.regions_analyzed <- s.regions_analyzed + 1
  else s.blocks_analyzed <- s.blocks_analyzed + 1;
  if findings <> [] then begin
    s.obligation_findings <- s.obligation_findings + List.length findings;
    List.iter
      (fun (f : Hostir.Absint.finding) ->
        if List.length !log < log_cap then
          log := !log @ [ (what, Hostir.Absint.finding_to_string f) ])
      findings
  end

(* Static obligation checking of one translation: the pre-allocation
   stream carries the register-file and writeback-discipline
   obligations, the allocated stream the spill-frame bounds. *)
let analyze_translation_into ~(s : phase_stats) ~log ~what ~region ~promoted
    ~(pre : Hir.instr array) (ra : Regalloc.result) =
  let ta = now () in
  let findings =
    Hostir.Absint.check_translation ~classify:Common.helper_kind ~promoted pre
    @ Hostir.Absint.check_frame ~n_slots:ra.Regalloc.n_slots ra.Regalloc.instrs
  in
  record_analysis_into ~s ~log ~what ~region findings;
  s.t_analyze <- s.t_analyze +. (now () -. ta)

let analyze_translation (e : t) ~what ~region ?(promoted = []) ~(pre : Hir.instr array)
    (ra : Regalloc.result) =
  let log = ref e.analysis_log in
  analyze_translation_into ~s:e.stats ~log ~what ~region ~promoted ~pre ra;
  e.analysis_log <- !log

(* --- relocation-cleanliness certification + persistent AOT cache ----------------- *)

(* Translation-side cycle charge: wall-clock cycles the guest pays for
   JIT/AOT work, kept out of guest-visible device time (the Machine's
   virtual-time split) so the guest's observable execution is identical
   whether its code was translated cold or installed warm. *)
let charge_translate_with (e : t) ~template n =
  Machine.charge_jit e.machine n;
  e.stats.translate_cycles <- e.stats.translate_cycles + n;
  if template then
    e.stats.translate_cycles_template <- e.stats.translate_cycles_template + n
  else e.stats.translate_cycles_pipeline <- e.stats.translate_cycles_pipeline + n

let charge_translate (e : t) n = charge_translate_with e ~template:false n

(* Same ledger split as [charge_translate], plus the async sub-ledger:
   cycles charged here were spent on a worker domain while the vCPU kept
   executing, so [async_jit_cycles / jit_cycles] is the translate-stall
   share the pool removed from the vCPU's critical path. *)
let charge_translate_async (e : t) n =
  Machine.charge_jit_async e.machine n;
  e.stats.translate_cycles <- e.stats.translate_cycles + n;
  e.stats.translate_cycles_pipeline <- e.stats.translate_cycles_pipeline + n

let reloc_env_of (je : jit_env) ~n_exits ~n_slots : Hostir.Reloc.env =
  {
    Hostir.Reloc.n_exits;
    n_helpers = je.je_n_helpers;
    n_slots;
    rf_bytes = je.je_rf_bytes;
  }

(* Signature over everything that changes generated code for the same
   guest bytes: guest model identity (name, offline opt level, total SSA
   size) plus every config field the translator consults.  Two boots may
   exchange cache entries iff their signatures agree. *)
let aot_cfg_sig (e : t) : int64 =
  let c = e.config in
  Hostir.Reloc.hash64
    (Bytes.of_string
       (Printf.sprintf "%s|%d|%d|%d|%b|%b|%b|%b|%d|%b|%d|%d|%b|%d|%b|%b" e.guest.Ops.name
          e.guest.Ops.model.Ssa.Offline.opt_level
          (Ssa.Offline.total_size e.guest.Ops.model)
          e.guest.Ops.insn_size c.hw_fp c.chaining c.pcid c.split_va_check c.max_block
          c.tiering c.hot_threshold c.region_max_blocks c.promote c.promote_max_regs
          c.absint_simplify c.templates))

(* Account one certification outcome: counters, plus a capped log of
   findings (full detail, for the relocheck subcommand). *)
let record_reloc_into ~(s : phase_stats) ~log ~what ~region
    (findings : Hostir.Reloc.finding list) =
  if findings = [] then
    if region then s.regions_certified <- s.regions_certified + 1
    else s.blocks_certified <- s.blocks_certified + 1
  else begin
    s.reloc_findings <- s.reloc_findings + List.length findings;
    List.iter
      (fun f ->
        if List.length !log < log_cap then
          log := !log @ [ (what, Hostir.Reloc.finding_to_string f) ])
      findings
  end

(* Certify one encoded translation relocation-clean (operand/control
   classification + encoding-determinism audit); [Some] carries the
   certificate the AOT cache persists. *)
let certify_translation_into (je : jit_env) ~(s : phase_stats) ~log ~what ~region ~n_exits
    ~n_slots ?ra (code : bytes) : Hostir.Reloc.certificate option =
  let t0 = now () in
  let r = Hostir.Reloc.certify ~env:(reloc_env_of je ~n_exits ~n_slots) ?ra code in
  (match r with
  | Ok _ -> record_reloc_into ~s ~log ~what ~region []
  | Error fs -> record_reloc_into ~s ~log ~what ~region fs);
  s.t_reloc <- s.t_reloc +. (now () -. t0);
  match r with Ok c -> Some c | Error _ -> None

let certify_translation (e : t) ~what ~region ~n_exits ~n_slots ?ra (code : bytes) :
    Hostir.Reloc.certificate option =
  let log = ref e.reloc_log in
  let r =
    certify_translation_into e.jenv ~s:e.stats ~log ~what ~region ~n_exits ~n_slots ?ra code
  in
  e.reloc_log <- !log;
  r

(* Guest code bytes currently at [pa], for content verification of AOT
   entries (both guests use 32-bit instruction words). *)
let read_guest_bytes (e : t) ~pa ~len : bytes =
  let b = Bytes.create len in
  let words = len / 4 in
  for i = 0 to words - 1 do
    let w = Machine.phys_read e.machine ~bits:32 (Int64.add pa (Int64.of_int (4 * i))) in
    Bytes.set_int32_le b (4 * i) (Int64.to_int32 w)
  done;
  for i = 4 * words to len - 1 do
    Bytes.set_uint8 b i
      (Int64.to_int (Machine.phys_read e.machine ~bits:8 (Int64.add pa (Int64.of_int i))))
  done;
  b

(* Installing from the AOT cache still costs cycles (read, verify,
   re-bind the numbered sites) — a small fraction of a fresh
   translation's 1400/guest-instruction charge. *)
let aot_load_cost ~n_host = 50 + (n_host / 4)

(* Install a certified cache entry as a block: identical cache /
   page-protection / sanitizer bookkeeping to a cold translation, with
   only the translation work replaced by the load cost.  [tier] is 0 for
   kind-0 (pipeline) entries and -1 for kind-2 (template-stitched)
   entries, whose load cost lands in the template ledger. *)
let install_aot_block (e : t) (entry : Aotcache.entry) ?(tier = 0) ~va ~pa ~el ~mmu_on () :
    translation =
  let s = e.stats in
  let program = Encode.decode_program ~n_slots:entry.Aotcache.e_n_slots entry.Aotcache.e_code in
  charge_translate_with e ~template:(tier < 0) (aot_load_cost ~n_host:entry.Aotcache.e_n_host);
  s.aot_hits <- s.aot_hits + 1;
  s.blocks_translated <- s.blocks_translated + 1;
  s.guest_instrs_translated <- s.guest_instrs_translated + entry.Aotcache.e_n_guest;
  s.host_instrs_emitted <- s.host_instrs_emitted + entry.Aotcache.e_n_host;
  s.host_bytes_emitted <- s.host_bytes_emitted + Bytes.length entry.Aotcache.e_code;
  if tier < 0 then begin
    s.template_blocks <- s.template_blocks + 1;
    s.template_instrs <- s.template_instrs + entry.Aotcache.e_n_guest
  end;
  let tr =
    {
      t_key = (pa, el, mmu_on);
      t_va = va;
      t_program = program;
      t_n_guest = entry.Aotcache.e_n_guest;
      t_n_host = entry.Aotcache.e_n_host;
      t_bytes = Bytes.length entry.Aotcache.e_code;
      t_chain = None;
      t_exec_count = 0;
      t_cycles = 0;
      t_tier = tier;
      t_members = 1;
      t_succs = [];
      t_exits = [||];
    }
  in
  Codecache.publish e.cache tr.t_key tr;
  let page = Bits.align_down pa 4096 in
  protect_page e page;
  (match e.sanitizer with
  | Some sa ->
    Hvm.Sanitize.record_translation sa ~mem:e.machine.Machine.mem ~pa ~el ~mmu:mmu_on
      ~len:(e.guest.Ops.insn_size * entry.Aotcache.e_n_guest);
    if e.config.sanitize_every > 0 && s.blocks_translated mod e.config.sanitize_every = 0 then
      sanitize_check e ~reason:"periodic"
  | None -> ());
  tr

(* Try to satisfy a block-translation request from the AOT cache: the
   entry's guest bytes must match guest memory byte-for-byte, and the
   stored code must re-certify.  A flagged or corrupted entry is
   rejected and the request falls back to cold translation.  [kind] 0
   carries pipeline blocks (installed at tier 0), kind 2 carries
   template-stitched blocks (installed at tier -1); only the kind-0
   probe counts misses, since it is the final cache fallback. *)
let aot_try_kind (e : t) ~kind ~tier ~count_miss ~va ~pa ~el ~mmu_on : translation option =
  match e.aot with
  | None -> None
  | Some cache ->
    let cfg = aot_cfg_sig e in
    let result =
      List.find_map
        (fun (entry : Aotcache.entry) ->
          let len = Bytes.length entry.Aotcache.e_guest in
          if len = 0 || not (Bytes.equal entry.Aotcache.e_guest (read_guest_bytes e ~pa ~len))
          then None
          else
            let what = Printf.sprintf "aot block pa=0x%Lx va=0x%Lx el=%d mmu=%b" pa va el mmu_on in
            match
              certify_translation e ~what ~region:false ~n_exits:0
                ~n_slots:entry.Aotcache.e_n_slots entry.Aotcache.e_code
            with
            | Some _ -> Some (install_aot_block e entry ~tier ~va ~pa ~el ~mmu_on ())
            | None ->
              e.stats.aot_rejects <- e.stats.aot_rejects + 1;
              None)
        (Aotcache.candidates cache ~kind ~va ~pa ~el ~mmu:mmu_on ~cfg)
    in
    if count_miss && Option.is_none result then e.stats.aot_misses <- e.stats.aot_misses + 1;
    result

let aot_try_block (e : t) ~va ~pa ~el ~mmu_on : translation option =
  aot_try_kind e ~kind:0 ~tier:0 ~count_miss:true ~va ~pa ~el ~mmu_on

let aot_try_template (e : t) ~va ~pa ~el ~mmu_on : translation option =
  aot_try_kind e ~kind:2 ~tier:(-1) ~count_miss:false ~va ~pa ~el ~mmu_on

let equiv_items_env (je : jit_env) ~el decoded : Hostir.Equiv.item list =
  let model = je.je_guest.Ops.model in
  List.map
    (fun d ->
      {
        Hostir.Equiv.it_action = Ssa.Offline.action model d.Adl.Decode.name;
        it_field = field_of ~el d;
        it_inc_pc = (if d.Adl.Decode.ends_block then None else Some je.je_guest.Ops.insn_size);
      })
    decoded

let equiv_items (e : t) ~el decoded : Hostir.Equiv.item list = equiv_items_env e.jenv ~el decoded

let translate_block_cold (e : t) sys ~va ~pa ~el ~mmu_on : translation =
  let s = e.stats in
  ignore sys;
  (* Phase 1: decode one guest basic block. *)
  let t0 = now () in
  let decoded, undefined_stub = decode_block e ~va ~pa in
  let n = ref (List.length decoded) in
  let undefined_stub = ref undefined_stub in
  s.t_decode <- s.t_decode +. (now () -. t0);
  (* Phase 2: translation via generator functions over the invocation DAG. *)
  let t1 = now () in
  let model = e.guest.Ops.model in
  let dag = Dag.create (dag_config_of e ~mmu_on) in
  let em = Dag.emitter dag in
  if !undefined_stub then
    (* An undefined first instruction gets a cached stub that raises the
       guest's undefined-instruction exception. *)
    em.Ssa.Emitter.effect "take_exception" [ em.Ssa.Emitter.const 0L; em.Ssa.Emitter.const 0L ]
  else
    List.iter
      (fun d ->
        let action = Ssa.Offline.action model d.Adl.Decode.name in
        let field = field_of ~el d in
        let inc_pc = if d.Adl.Decode.ends_block then None else Some e.guest.Ops.insn_size in
        Ssa.Gen.translate em action ~field ~inc_pc)
      decoded;
  Dag.raw dag (Hir.Exit 0);
  let instrs = Dag.finish dag in
  s.t_translate <- s.t_translate +. (now () -. t1);
  s.t_tier0 <- s.t_tier0 +. (now () -. t1);
  (* Symbolic translation validation (off the hot path unless enabled):
     check the optimized stream against a per-instruction reference
     emission from the same decode, sampled every [validate_every]th
     block. *)
  (if e.config.validate_translations && (not !undefined_stub) && decoded <> [] then begin
     e.validate_tick <- e.validate_tick + 1;
     if e.config.validate_every <= 1 || e.validate_tick mod e.config.validate_every = 0 then begin
       let tv = now () in
       trace e "validate: block pa=0x%Lx va=0x%Lx (%d host instrs)\n%!" pa va
         (Array.length instrs);
       let outcome =
         Hostir.Equiv.check_block ~classify:Common.helper_kind ~config:(dag_config_of e ~mmu_on)
           ~init_pc:(Hostir.Symexec.Const va) ~opt:instrs (equiv_items e ~el decoded)
       in
       record_validation e
         ~what:(Printf.sprintf "block pa=0x%Lx va=0x%Lx el=%d mmu=%b" pa va el mmu_on)
         ~region:false outcome;
       s.t_validate <- s.t_validate +. (now () -. tv)
     end
   end);
  (* Phase 3: register allocation. *)
  let t2 = now () in
  let ra = Regalloc.run instrs in
  s.t_regalloc <- s.t_regalloc +. (now () -. t2);
  (* Static obligation checking (off the hot path unless enabled): the
     analyzer proves register-file bounds on the emitted stream and
     frame bounds on the allocated one; any finding is a miscompile. *)
  if e.config.analyze_translations then
    analyze_translation e
      ~what:(Printf.sprintf "block pa=0x%Lx va=0x%Lx el=%d mmu=%b" pa va el mmu_on)
      ~region:false ~pre:instrs ra;
  (* Phase 4: encoding to host machine code + patching. *)
  let t3 = now () in
  let code = Encode.encode ra in
  let program = Encode.decode_program ~n_slots:ra.Regalloc.n_slots code in
  s.t_encode <- s.t_encode +. (now () -. t3);
  (* Charge JIT compilation time to the cycle model: Captive's pipeline
     makes several passes (DAG build, liveness, allocation, encode),
     costed per guest instruction and per emitted host instruction.  The
     resulting translation is ~2-3x more expensive than the QEMU-style
     engine's single direct pass (paper Sec. 3.4). *)
  let n_host = Array.length instrs in
  charge_translate e ((1400 * !n) + (260 * n_host));
  s.blocks_translated <- s.blocks_translated + 1;
  s.guest_instrs_translated <- s.guest_instrs_translated + !n;
  s.host_instrs_emitted <- s.host_instrs_emitted + n_host;
  s.host_bytes_emitted <- s.host_bytes_emitted + Bytes.length code;
  s.dead_marked <- s.dead_marked + ra.Regalloc.n_dead;
  s.spills <- s.spills + ra.Regalloc.n_spilled;
  let tr =
    {
      t_key = (pa, el, mmu_on);
      t_va = va;
      t_program = program;
      t_n_guest = !n;
      t_n_host = n_host;
      t_bytes = Bytes.length code;
      t_chain = None;
      t_exec_count = 0;
      t_cycles = 0;
      t_tier = 0;
      t_members = 1;
      t_succs = [];
      t_exits = [||];
    }
  in
  (* Register in the cache and write-protect the code's guest pages. *)
  Codecache.publish e.cache tr.t_key tr;
  (* Blocks never cross a page boundary (decode stops at it), so exactly
     one guest page holds this translation's code. *)
  let page = Bits.align_down pa 4096 in
  protect_page e page;
  (match e.sanitizer with
  | Some sa ->
    Hvm.Sanitize.record_translation sa ~mem:e.machine.Machine.mem ~pa ~el ~mmu:mmu_on
      ~len:(4 * !n);
    if e.config.sanitize_every > 0 && s.blocks_translated mod e.config.sanitize_every = 0 then
      sanitize_check e ~reason:"periodic"
  | None -> ());
  (* Relocation-cleanliness certification, and persistence of certified
     translations.  Undefined-instruction stubs are certified like any
     other code but cover no guest bytes, so they are translated fresh
     on every boot and never persisted. *)
  (if e.config.reloc_check || Option.is_some e.aot then begin
     let what = Printf.sprintf "block pa=0x%Lx va=0x%Lx el=%d mmu=%b" pa va el mmu_on in
     match
       certify_translation e ~what ~region:false ~n_exits:0 ~n_slots:ra.Regalloc.n_slots ~ra
         code
     with
     | Some cert when (not !undefined_stub) && !n > 0 -> (
       match e.aot with
       | Some cache ->
         let len = e.guest.Ops.insn_size * !n in
         Aotcache.store cache
           {
             Aotcache.e_kind = 0;
             e_va = va;
             e_pa = pa;
             e_el = el;
             e_mmu = mmu_on;
             e_cfg = aot_cfg_sig e;
             e_members = [| (va, len) |];
             e_guest = read_guest_bytes e ~pa ~len;
             e_n_slots = ra.Regalloc.n_slots;
             e_n_exits = 0;
             e_n_guest = !n;
             e_n_host = n_host;
             e_code = code;
             e_hash = cert.Hostir.Reloc.c_hash;
           };
         s.aot_stores <- s.aot_stores + 1
       | None -> ())
     | Some _ | None -> ()
   end);
  tr

(* Simulated cost of installing a template-stitched block: per-guest
   hole evaluation/patching plus per-host-instruction copy/encode.  No
   SSA walk, DAG build, liveness or linear scan happens per block, so
   the charge is roughly an order of magnitude below the pipeline's
   1400/260 (mining itself is an offline per-opcode artifact, charged
   zero here; [mine-templates] builds the same table ahead of time). *)
let template_install_cost ~n_guest ~n_host = 40 + (150 * n_guest) + (25 * n_host)

(* Tier minus one: stitch per-instruction template fragments instead of
   running the translation pipeline.  Returns [None] (caller goes to
   the pipeline) when any instruction's form is untemplatable or a hole
   fails to patch.  The stitched block passes the same trust stack as a
   cold one: post-regalloc [Verify], sampled [Equiv] validation of the
   patched pre-regalloc stream, [Absint] obligations when enabled, and
   [Reloc] certification before kind-2 AOT persistence. *)
let translate_block_template (e : t) ~va ~pa ~el ~mmu_on : translation option =
  let s = e.stats in
  let t0 = now () in
  let decoded, undefined_stub = decode_block e ~va ~pa in
  s.t_decode <- s.t_decode +. (now () -. t0);
  if undefined_stub || decoded = [] then None
  else begin
    let t1 = now () in
    let model = e.guest.Ops.model in
    let tt = templates_of e in
    (* Look up (or mine, first time per form+pins) one fragment per
       decoded instruction; any miss sends the whole block cold. *)
    let rec gather acc = function
      | [] -> Some (List.rev acc)
      | d :: rest -> (
        let name = d.Adl.Decode.name in
        let action = Ssa.Offline.action model name in
        let field = field_of ~el d in
        let inc_pc = if d.Adl.Decode.ends_block then None else Some e.guest.Ops.insn_size in
        match Hostir.Template.fragment tt ~action ~name ~inc_pc ~mmu_on ~field with
        | Hostir.Template.Hit f -> gather ((f, field) :: acc) rest
        | Hostir.Template.Mined f ->
          s.templates_mined <- s.templates_mined + 1;
          gather ((f, field) :: acc) rest
        | Hostir.Template.Miss _ ->
          s.template_misses <- s.template_misses + 1;
          Hashtbl.replace e.template_miss name
            (1 + (try Hashtbl.find e.template_miss name with Not_found -> 0));
          None)
    in
    let result =
      match gather [] decoded with
      | None -> None
      | Some frags -> (
        match Hostir.Template.assemble tt frags with
        | None -> None
        | Some (pre, ra) ->
          (* Defensive structural check on the fabricated allocation:
             a stitching bug must fall back cold, never reach encode. *)
          if Hostir.Verify.check ~original:pre ra <> [] then None else Some (pre, ra))
    in
    s.t_translate <- s.t_translate +. (now () -. t1);
    s.t_template <- s.t_template +. (now () -. t1);
    match result with
    | None ->
      s.template_fallback_blocks <- s.template_fallback_blocks + 1;
      None
    | Some (pre, ra) ->
      let n = List.length decoded in
      (* Sampled symbolic validation of the patched stream, same cadence
         and reference emission as the cold pipeline. *)
      (if e.config.validate_translations then begin
         e.validate_tick <- e.validate_tick + 1;
         if e.config.validate_every <= 1 || e.validate_tick mod e.config.validate_every = 0 then begin
           let tv = now () in
           trace e "validate: template block pa=0x%Lx va=0x%Lx (%d host instrs)\n%!" pa va
             (Array.length pre);
           let outcome =
             Hostir.Equiv.check_block ~classify:Common.helper_kind
               ~config:(dag_config_of e ~mmu_on) ~init_pc:(Hostir.Symexec.Const va) ~opt:pre
               (equiv_items e ~el decoded)
           in
           record_validation e
             ~what:
               (Printf.sprintf "template block pa=0x%Lx va=0x%Lx el=%d mmu=%b" pa va el mmu_on)
             ~region:false outcome;
           s.t_validate <- s.t_validate +. (now () -. tv)
         end
       end);
      if e.config.analyze_translations then
        analyze_translation e
          ~what:(Printf.sprintf "template block pa=0x%Lx va=0x%Lx el=%d mmu=%b" pa va el mmu_on)
          ~region:false ~pre ra;
      let t3 = now () in
      let code = Encode.encode ra in
      let program = Encode.decode_program ~n_slots:ra.Regalloc.n_slots code in
      s.t_encode <- s.t_encode +. (now () -. t3);
      let n_host = Array.length pre in
      charge_translate_with e ~template:true (template_install_cost ~n_guest:n ~n_host);
      s.blocks_translated <- s.blocks_translated + 1;
      s.guest_instrs_translated <- s.guest_instrs_translated + n;
      s.host_instrs_emitted <- s.host_instrs_emitted + n_host;
      s.host_bytes_emitted <- s.host_bytes_emitted + Bytes.length code;
      s.template_blocks <- s.template_blocks + 1;
      s.template_instrs <- s.template_instrs + n;
      let tr =
        {
          t_key = (pa, el, mmu_on);
          t_va = va;
          t_program = program;
          t_n_guest = n;
          t_n_host = n_host;
          t_bytes = Bytes.length code;
          t_chain = None;
          t_exec_count = 0;
          t_cycles = 0;
          t_tier = -1;
          t_members = 1;
          t_succs = [];
          t_exits = [||];
        }
      in
      Codecache.publish e.cache tr.t_key tr;
      let page = Bits.align_down pa 4096 in
      protect_page e page;
      (match e.sanitizer with
      | Some sa ->
        Hvm.Sanitize.record_translation sa ~mem:e.machine.Machine.mem ~pa ~el ~mmu:mmu_on
          ~len:(4 * n);
        if e.config.sanitize_every > 0 && s.blocks_translated mod e.config.sanitize_every = 0
        then sanitize_check e ~reason:"periodic"
      | None -> ());
      (* Certify and persist as a kind-2 entry so warm boots install the
         same bits without re-stitching (and without re-mining). *)
      (if e.config.reloc_check || Option.is_some e.aot then begin
         let what =
           Printf.sprintf "template block pa=0x%Lx va=0x%Lx el=%d mmu=%b" pa va el mmu_on
         in
         match
           certify_translation e ~what ~region:false ~n_exits:0 ~n_slots:ra.Regalloc.n_slots
             ~ra code
         with
         | Some cert -> (
           match e.aot with
           | Some cache ->
             let len = e.guest.Ops.insn_size * n in
             Aotcache.store cache
               {
                 Aotcache.e_kind = 2;
                 e_va = va;
                 e_pa = pa;
                 e_el = el;
                 e_mmu = mmu_on;
                 e_cfg = aot_cfg_sig e;
                 e_members = [| (va, len) |];
                 e_guest = read_guest_bytes e ~pa ~len;
                 e_n_slots = ra.Regalloc.n_slots;
                 e_n_exits = 0;
                 e_n_guest = n;
                 e_n_host = n_host;
                 e_code = code;
                 e_hash = cert.Hostir.Reloc.c_hash;
               };
             s.aot_stores <- s.aot_stores + 1
           | None -> ())
         | None -> ()
       end);
      Some tr
  end

(* The old [translate_block] (AOT probe then cold pipeline), reached
   when templates are disabled, when a block's form set is
   untemplatable, and when a template block is promoted (promotion
   re-translates through the full pipeline). *)
let translate_block_pipeline (e : t) sys ~va ~pa ~el ~mmu_on : translation =
  match aot_try_block e ~va ~pa ~el ~mmu_on with
  | Some tr -> tr
  | None -> translate_block_cold e sys ~va ~pa ~el ~mmu_on

let translate_block (e : t) sys ~va ~pa ~el ~mmu_on : translation =
  if e.config.templates && e.config.tiering then begin
    let t0 = now () in
    match aot_try_template e ~va ~pa ~el ~mmu_on with
    | Some tr ->
      e.stats.t_template <- e.stats.t_template +. (now () -. t0);
      tr
    | None -> (
      match translate_block_template e ~va ~pa ~el ~mmu_on with
      | Some tr -> tr
      | None -> translate_block_pipeline e sys ~va ~pa ~el ~mmu_on)
  end
  else translate_block_pipeline e sys ~va ~pa ~el ~mmu_on

(* --- tiered translation: hot-region formation (tier 1) ---------------------------- *)

(* Bounded successor profile (space-saving, k = 4): recorded free of
   charge in the run loop while a block is still tier 0; drives member
   selection and dispatch ordering when the block is promoted. *)
let record_succ (tr : translation) va el =
  let rec bump = function
    | [] -> None
    | (v, e_, c) :: rest when Int64.equal v va && e_ = el -> Some ((v, e_, c + 1) :: rest)
    | x :: rest -> Option.map (fun r -> x :: r) (bump rest)
  in
  match bump tr.t_succs with
  | Some l -> tr.t_succs <- l
  | None ->
    if List.length tr.t_succs < 4 then tr.t_succs <- (va, el, 1) :: tr.t_succs
    else begin
      (* replace the coldest entry, inheriting its count *)
      let min_c = List.fold_left (fun m (_, _, c) -> min m c) max_int tr.t_succs in
      let replaced = ref false in
      tr.t_succs <-
        List.map
          (fun (v, e_, c) ->
            if (not !replaced) && c = min_c then begin
              replaced := true;
              (va, el, min_c + 1)
            end
            else (v, e_, c))
          tr.t_succs
    end

(* Profiled successor VAs of [tr] at exception level [el], hottest first;
   the recorded chain edge counts as the hottest observation. *)
let succs_by_heat (tr : translation) ~el =
  let base = List.filter (fun (_, e_, _) -> e_ = el) tr.t_succs in
  let base =
    match tr.t_chain with
    | Some (cva, cel, _)
      when cel = el && not (List.exists (fun (v, _, _) -> Int64.equal v cva) base) ->
      (cva, el, max_int) :: base
    | _ -> base
  in
  List.sort (fun (_, _, a) (_, _, b) -> compare b a) base |> List.map (fun (v, _, _) -> v)

(* Promote a hot tier-0 block: grow a region by following the recorded
   chain edge plus the bounded taken-target profile — limited to
   [region_max_blocks] members on the head's guest page (so physical
   code-cache indexing and page-granular SMC invalidation stay exact) and
   to the head's exception level and MMU regime — and translate the
   region as one unit.  Intra-region control flow becomes a PC-compare
   dispatch per member, straightened into direct jumps where the target
   is static, with no per-block prologue and cross-block dead
   register-file stores eliminated.  Members keep their own tier-0 cache
   entries (the region replaces only the head's), so a mid-region exit
   falls back to block-at-a-time execution; every member entry begins
   with a [Poll] safepoint, so interrupts, regime changes (the poison
   register) and the run loop's cycle/block budgets are honoured at
   block granularity exactly like the baseline dispatch loop. *)
(* Try to satisfy a region-translation request from the AOT cache.  The
   entry must cover exactly the members runtime profiling selected (same
   VAs, same lengths — member selection is deterministic because guest
   execution is), its guest bytes must match memory, and the stored code
   must re-certify.  Installs with the same bookkeeping as a cold region
   build: cache head replacement, member tier marks, chain-edge unlinks,
   sanitizer records — only the translation work is replaced. *)
let aot_try_region (e : t) ~(head : translation) ~(members : translation list) ~pa_page ~el
    ~mmu_on : bool =
  match e.aot with
  | None -> false
  | Some cache ->
    let s = e.stats in
    let pa_head, _, _ = head.t_key in
    let want =
      Array.of_list (List.map (fun m -> (m.t_va, e.guest.Ops.insn_size * m.t_n_guest)) members)
    in
    let matching (entry : Aotcache.entry) =
      entry.Aotcache.e_members = want
      &&
      let guest = Buffer.create 256 in
      Array.iter
        (fun (va_m, len) ->
          let pa_m = Int64.logor pa_page (Int64.logand va_m 0xFFFL) in
          Buffer.add_bytes guest (read_guest_bytes e ~pa:pa_m ~len))
        entry.Aotcache.e_members;
      Bytes.equal entry.Aotcache.e_guest (Buffer.to_bytes guest)
    in
    let install (entry : Aotcache.entry) =
      let what =
        Printf.sprintf "aot region pa=0x%Lx va=0x%Lx members=%d" pa_head head.t_va
          (Array.length entry.Aotcache.e_members)
      in
      match
        certify_translation e ~what ~region:true ~n_exits:entry.Aotcache.e_n_exits
          ~n_slots:entry.Aotcache.e_n_slots entry.Aotcache.e_code
      with
      | None ->
        s.aot_rejects <- s.aot_rejects + 1;
        false
      | Some _ ->
        let program =
          Encode.decode_program ~n_slots:entry.Aotcache.e_n_slots entry.Aotcache.e_code
        in
        charge_translate e (aot_load_cost ~n_host:entry.Aotcache.e_n_host);
        s.aot_hits <- s.aot_hits + 1;
        s.regions_formed <- s.regions_formed + 1;
        s.region_blocks <- s.region_blocks + List.length members;
        s.region_host_instrs <- s.region_host_instrs + entry.Aotcache.e_n_host;
        let region =
          {
            t_key = head.t_key;
            t_va = head.t_va;
            t_program = program;
            t_n_guest = entry.Aotcache.e_n_guest;
            t_n_host = entry.Aotcache.e_n_host;
            t_bytes = Bytes.length entry.Aotcache.e_code;
            t_chain = None;
            t_exec_count = 0;
            t_cycles = 0;
            t_tier = 1;
            t_members = List.length members;
            t_succs = [];
            t_exits = Array.make entry.Aotcache.e_n_exits None;
          }
        in
        Codecache.publish e.cache region.t_key region;
        List.iter (fun m -> m.t_tier <- 1) members;
        head.t_chain <- None;
        Codecache.iter
          (fun _ tr ->
            (match tr.t_chain with
            | Some (_, _, tgt) when tgt == head -> tr.t_chain <- None
            | _ -> ());
            Array.iteri
              (fun i edge ->
                match edge with
                | Some (_, _, tgt) when tgt == head -> tr.t_exits.(i) <- None
                | _ -> ())
              tr.t_exits)
          e.cache;
        (match e.sanitizer with
        | Some sa ->
          List.iter
            (fun m ->
              let pa_m = Int64.logor pa_page (Int64.logand m.t_va 0xFFFL) in
              Hvm.Sanitize.record_translation sa ~mem:e.machine.Machine.mem ~pa:pa_m ~el
                ~mmu:mmu_on ~len:(e.guest.Ops.insn_size * m.t_n_guest))
            members
        | None -> ());
        true
    in
    let rec try_all = function
      | [] ->
        s.aot_misses <- s.aot_misses + 1;
        false
      | entry :: rest -> if matching entry && install entry then true else try_all rest
    in
    try_all
      (Aotcache.candidates cache ~kind:1 ~va:head.t_va ~pa:pa_head ~el ~mmu:mmu_on
         ~cfg:(aot_cfg_sig e))

(* --- region formation as pure jobs ------------------------------------------------ *)

(* Member selection: breadth-first over the recorded chain edge plus the
   bounded taken-target profile — limited to [region_max_blocks] members
   on the head's guest page (so physical code-cache indexing and
   page-granular SMC invalidation stay exact) and to the head's
   exception level and MMU regime.  Also reports whether the head
   self-loops: a single-member region is still worth translating when
   the head loops back to itself — the self-edge becomes an in-region
   transfer with no dispatch, no per-iteration block entry and a
   deferred PC sync, the hottest shape in loop kernels. *)
let select_members (e : t) (head : translation) : translation list * bool =
  let pa_head, el, mmu_on = head.t_key in
  let va_page = Bits.align_down head.t_va 4096 in
  let pa_page = Bits.align_down pa_head 4096 in
  let members = ref [ head ] in
  let queue = Queue.create () in
  Queue.add head queue;
  while (not (Queue.is_empty queue)) && List.length !members < e.config.region_max_blocks do
    let m = Queue.pop queue in
    List.iter
      (fun va ->
        if
          List.length !members < e.config.region_max_blocks
          && Int64.equal (Bits.align_down va 4096) va_page
          && not (List.exists (fun m' -> Int64.equal m'.t_va va) !members)
        then
          let pa = Int64.logor pa_page (Int64.logand va 0xFFFL) in
          match Codecache.lookup e.cache (pa, el, mmu_on) with
          | Some tr
            when tr.t_n_guest > 0 && tr.t_members = 1
                 && Array.length tr.t_exits = 0
                 && Int64.equal tr.t_va va ->
            members := !members @ [ tr ];
            Queue.add tr queue
          | _ -> ())
      (succs_by_heat m ~el)
  done;
  let self_loop =
    List.exists (fun va -> Int64.equal va head.t_va) (succs_by_heat head ~el)
  in
  (!members, self_loop)

(* Capture a region-formation job: snapshot the head's guest page
   (regions never cross a page), freeze the member descriptors and
   successor profiles, and record the page invalidation generation and
   guest-byte hash that gate the eventual install.  Everything a worker
   reads lives in [j_req]; page snapshots are charge-free
   ([Machine.phys_read] of RAM), so capturing a job costs no guest
   cycles. *)
let make_region_job (e : t) ~(head : translation) ~(members : translation list) : region_job =
  let pa_head, el, mmu_on = head.t_key in
  let pa_page = Bits.align_down pa_head 4096 in
  let snapshot = read_guest_bytes e ~pa:pa_page ~len:4096 in
  let descs =
    List.map
      (fun m ->
        {
          md_va = m.t_va;
          md_off = Int64.to_int (Int64.logand m.t_va 0xFFFL);
          md_succs = succs_by_heat m ~el;
        })
      members
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun m ->
      let off = Int64.to_int (Int64.logand m.t_va 0xFFFL) in
      Buffer.add_bytes buf (Bytes.sub snapshot off (e.guest.Ops.insn_size * m.t_n_guest)))
    members;
  {
    j_req =
      {
        rq_head_va = head.t_va;
        rq_pa_page = pa_page;
        rq_el = el;
        rq_mmu = mmu_on;
        rq_members = descs;
        rq_snapshot = snapshot;
      };
    j_head = head;
    j_members = members;
    j_gen = Codecache.page_gen e.cache pa_page;
    j_guest_hash = Hostir.Reloc.hash64 (Buffer.to_bytes buf);
    j_outcome = None;
  }

(* The members' guest bytes as they are in memory right now, hashed for
   comparison against [j_guest_hash] before an async install: a job
   whose source bytes changed since enqueue is rejected even if the
   page's invalidation generation did not move. *)
let live_guest_hash (e : t) (job : region_job) : int64 =
  let pa_page = job.j_req.rq_pa_page in
  let buf = Buffer.create 256 in
  List.iter
    (fun m ->
      let pa_m = Int64.logor pa_page (Int64.logand m.t_va 0xFFFL) in
      Buffer.add_bytes buf
        (read_guest_bytes e ~pa:pa_m ~len:(e.guest.Ops.insn_size * m.t_n_guest)))
    job.j_members;
  Hostir.Reloc.hash64 (Buffer.to_bytes buf)

(* The pure job runner: (page snapshot, member descriptors, regime,
   opt config) -> (certified encoded program, stats delta, finding
   logs).  Runs on a worker domain, or inline on the vCPU when
   [domains <= 1]; reads nothing but [je] and [req] — never the engine,
   the machine, or live guest memory.  Intra-region control flow
   becomes a PC-compare dispatch per member, straightened into direct
   jumps where the target is static, with no per-block prologue and
   cross-block dead register-file stores eliminated.  Members keep
   their own tier-0 cache entries (the region replaces only the
   head's), so a mid-region exit falls back to block-at-a-time
   execution; every member entry begins with a [Poll] safepoint, so
   interrupts, regime changes (the poison register) and the run loop's
   cycle/block budgets are honoured at block granularity exactly like
   the baseline dispatch loop.  Exceptions (a writeback-discipline
   violation from [Verify.check_wb_exn]) propagate to the caller, which
   wraps them as [R_exn] on the async path. *)
let run_region_job (je : jit_env) (req : region_request) : region_result =
  let s = new_phase_stats () in
  let v_log = ref [] and a_log = ref [] and r_log = ref [] in
  let cfg = je.je_config in
  let el = req.rq_el and mmu_on = req.rq_mmu in
  let pa_head = Int64.logor req.rq_pa_page (Int64.logand req.rq_head_va 0xFFFL) in
  let n_members = List.length req.rq_members in
  s.regions_formed <- 1;
  s.region_blocks <- n_members;
  let t1 = now () in
  let model = je.je_guest.Ops.model in
  let dag = Dag.create (dag_config_env je ~mmu_on) in
  let em = Dag.emitter dag in
  let entries = List.map (fun md -> (md, em.Ssa.Emitter.create_block ())) req.rq_members in
  let entry_label va =
    List.find_map (fun (md, l) -> if Int64.equal md.md_va va then Some l else None) entries
  in
  let dispatch_labels = ref Hostir.Region.Iset.empty in
  let n_guest = ref 0 in
  (* Per-member decode record, kept only when validation is on: enough
     for Hostir.Equiv to re-create the member/dispatch skeleton. *)
  let member_refs = ref [] in
  let keep_ref mr = if cfg.validate_translations then member_refs := mr :: !member_refs in
  List.iteri
    (fun mi (md, l) ->
      em.Ssa.Emitter.set_block l;
      Dag.raw dag (Hir.Poll 0);
      let decoded, undef = decode_block_pure je ~snapshot:req.rq_snapshot ~va:md.md_va ~off:md.md_off in
      if undef || decoded = [] then begin
        (* cannot happen for an already-translated member; bail to the
           dispatcher rather than mistranslate *)
        keep_ref
          { Hostir.Equiv.mb_va = md.md_va; mb_items = []; mb_undef = true; mb_targets = [] };
        Dag.raw dag (Hir.Exit 0)
      end
      else begin
        n_guest := !n_guest + List.length decoded;
        List.iter
          (fun d ->
            let action = Ssa.Offline.action model d.Adl.Decode.name in
            let field = field_of ~el d in
            let inc_pc =
              if d.Adl.Decode.ends_block then None else Some je.je_guest.Ops.insn_size
            in
            Ssa.Gen.translate em action ~field ~inc_pc)
          decoded;
        (* Member epilogue: PC-compare dispatch to the profiled
           in-region successors, hottest first; anything else exits to
           the engine dispatcher. *)
        let l_d = em.Ssa.Emitter.create_block () in
        Dag.raw dag (Hir.Jmp l_d);
        em.Ssa.Emitter.set_block l_d;
        dispatch_labels := Hostir.Region.Iset.add l_d !dispatch_labels;
        let targets =
          List.filter_map
            (fun va -> Option.map (fun lt -> (va, lt)) (entry_label va))
            md.md_succs
        in
        keep_ref
          {
            Hostir.Equiv.mb_va = md.md_va;
            mb_items = equiv_items_env je ~el decoded;
            mb_undef = false;
            mb_targets = List.map fst targets;
          };
        let pc = Dag.fresh_vreg dag in
        if targets <> [] then Dag.raw dag (Hir.Load_pc pc);
        List.iter
          (fun (va_t, lt) ->
            let c = Dag.fresh_vreg dag in
            Dag.raw dag (Hir.Setcc (Hir.Ceq, c, pc, Hir.Imm va_t));
            let l_next = em.Ssa.Emitter.create_block () in
            Dag.raw dag (Hir.Br (c, lt, l_next));
            em.Ssa.Emitter.set_block l_next)
          targets;
        (* Slot mi+1: this member's own exit site, so the engine can
           patch a per-site chain edge (slot 0 = safepoint bail,
           never chained). *)
        Dag.raw dag (Hir.Exit (mi + 1))
      end)
    entries;
  let instrs = Dag.finish dag in
  let member_entry = List.map (fun (md, l) -> (md.md_va, l)) entries in
  let n0 = Array.length instrs in
  let instrs =
    Hostir.Region.optimize ~dispatch_labels:!dispatch_labels ~member_entry instrs
  in
  s.region_dead_stores <- s.region_dead_stores + (n0 - Array.length instrs);
  s.t_translate <- s.t_translate +. (now () -. t1);
  s.t_region <- s.t_region +. (now () -. t1);
  let t2 = now () in
  let t_simplify = ref 0. in
  let instrs, ra, promoted =
    if not cfg.promote then (instrs, Regalloc.run instrs, [])
    else begin
      (* Promotion widens live ranges across the whole region, and a
         promoted access through a spill slot costs more than the
         [Ldrf] it replaced — so promotion is only accepted when
         allocation stays spill-free relative to the unpromoted
         stream, narrowing the candidate set until it does.  Width 0
         still runs copy propagation and memory redundancy
         elimination. *)
      let ra0 = Regalloc.run instrs in
      let rec attempt k =
        let promoted_instrs, promoted, ps =
          Hostir.Promote.run ~max_regs:k ~classify:Common.helper_kind instrs
        in
        (* The O4 absint-simplify pass, on the flattened promoted
           stream where its facts materialize: fold decided branches,
           delete cross-block dead definitions, drop proved-redundant
           masks, strength-reduce division.  The writeback discipline
           is re-proved below on the simplified stream. *)
        let instrs', ss =
          if cfg.absint_simplify then begin
            let ts = now () in
            let r =
              Hostir.Absint.simplify ~classify:Common.helper_kind promoted_instrs
            in
            t_simplify := !t_simplify +. (now () -. ts);
            r
          end
          else (promoted_instrs, Hostir.Absint.empty_simplify_stats ())
        in
        let ra' = Regalloc.run instrs' in
        if ra'.Regalloc.n_spilled <= ra0.Regalloc.n_spilled then begin
          (* Always-on safety net: a region whose safepoint, exit or
             faulting access is reachable with an uncovered dirty
             promoted register would silently corrupt guest state.
             Checked on the promoter's own output first — a promotion
             bug must surface here, before simplify's dead-code pass
             can delete the dirty definition that would incriminate
             it — and again on the simplified stream the engine
             actually runs. *)
          let wb_what pass =
            Printf.sprintf "region pa=0x%Lx va=0x%Lx members=%d pass=%s" pa_head
              req.rq_head_va n_members pass
          in
          Hostir.Verify.check_wb_exn ~what:(wb_what "promote")
            ~classify:Common.helper_kind ~promoted promoted_instrs;
          if cfg.absint_simplify then
            Hostir.Verify.check_wb_exn ~what:(wb_what "absint-simplify")
              ~classify:Common.helper_kind ~promoted instrs';
          s.rf_promoted <- s.rf_promoted + ps.Hostir.Promote.promoted;
          s.region_wb_entries <- s.region_wb_entries + ps.Hostir.Promote.wb_entries;
          s.mem_loads_elided <- s.mem_loads_elided + ps.Hostir.Promote.loads_elided;
          s.stores_forwarded <- s.stores_forwarded + ps.Hostir.Promote.stores_forwarded;
          s.absint_branches_folded <-
            s.absint_branches_folded + ss.Hostir.Absint.branches_folded;
          s.absint_consts_folded <- s.absint_consts_folded + ss.Hostir.Absint.consts_folded;
          s.absint_masks_dropped <- s.absint_masks_dropped + ss.Hostir.Absint.masks_dropped;
          s.absint_divs_reduced <- s.absint_divs_reduced + ss.Hostir.Absint.divs_reduced;
          s.absint_dead_deleted <- s.absint_dead_deleted + ss.Hostir.Absint.dead_deleted;
          (instrs', ra', promoted)
        end
        else if k = 0 then (instrs, ra0, [])
        else attempt (k - 1)
      in
      attempt cfg.promote_max_regs
    end
  in
  s.spills <- s.spills + ra.Regalloc.n_spilled;
  (* The simplify pass runs inside the allocation window; account it
     to the analysis phase so the bench breakdown separates them. *)
  s.t_regalloc <- s.t_regalloc +. (now () -. t2 -. !t_simplify);
  s.t_analyze <- s.t_analyze +. !t_simplify;
  if cfg.analyze_translations then
    analyze_translation_into ~s ~log:a_log
      ~what:(Printf.sprintf "region pa=0x%Lx va=0x%Lx members=%d" pa_head req.rq_head_va n_members)
      ~region:true ~promoted ~pre:instrs ra;
  (* Symbolic translation validation of the final pre-regalloc stream
     (region passes, promotion and Wbmap included).  Regions are few
     and load-bearing, so they are always validated when enabled, with
     no [validate_every] sampling. *)
  (if cfg.validate_translations then begin
     let tv = now () in
     let outcome =
       Hostir.Equiv.check_region ~classify:Common.helper_kind
         ~config:(dag_config_env je ~mmu_on) ~init_pc:(Hostir.Symexec.Const req.rq_head_va)
         ~opt:instrs (List.rev !member_refs)
     in
     record_validation_into ~s ~log:v_log
       ~what:(Printf.sprintf "region pa=0x%Lx va=0x%Lx members=%d" pa_head req.rq_head_va n_members)
       ~region:true outcome;
     s.t_validate <- s.t_validate +. (now () -. tv)
   end);
  let t3 = now () in
  let code = Encode.encode ra in
  let program = Encode.decode_program ~n_slots:ra.Regalloc.n_slots code in
  s.t_encode <- s.t_encode +. (now () -. t3);
  let n_host = Array.length instrs in
  s.region_host_instrs <- s.region_host_instrs + n_host;
  (* Relocation-cleanliness certification runs inside the job — it is a
     pure function of the encoded bytes — and the certificate travels
     with the result; persistence happens at install on the vCPU. *)
  let cert =
    if cfg.reloc_check || cfg.aot_dir <> None then
      certify_translation_into je ~s ~log:r_log
        ~what:(Printf.sprintf "region pa=0x%Lx va=0x%Lx members=%d" pa_head req.rq_head_va n_members)
        ~region:true ~n_exits:n_members ~n_slots:ra.Regalloc.n_slots ~ra code
    else None
  in
  {
    r_program = program;
    r_code = code;
    r_cert = cert;
    r_n_guest = !n_guest;
    r_n_host = n_host;
    r_n_slots = ra.Regalloc.n_slots;
    r_n_exits = n_members;
    r_stats = s;
    r_validation_log = !v_log;
    r_analysis_log = !a_log;
    r_reloc_log = !r_log;
  }

(* --- the worker pool ------------------------------------------------------------- *)

(* Worker-domain main loop: pop a job, run it pure, hand the outcome
   back under the pool lock.  Workers never touch the engine — the vCPU
   installs results from [drain_jobs] at dispatch granularity. *)
let rec worker_loop (je : jit_env) (p : pool) : unit =
  Mutex.lock p.p_mu;
  while p.p_pending = [] && not p.p_stop do
    Condition.wait p.p_cv p.p_mu
  done;
  match p.p_pending with
  | [] -> Mutex.unlock p.p_mu (* stopping *)
  | job :: rest ->
    p.p_pending <- rest;
    Mutex.unlock p.p_mu;
    let outcome = try R_ok (run_region_job je job.j_req) with exn -> R_exn exn in
    Mutex.lock p.p_mu;
    job.j_outcome <- Some outcome;
    p.p_done <- p.p_done @ [ job ];
    Mutex.unlock p.p_mu;
    worker_loop je p

(* The pool is spawned lazily on the first enqueue, so a [domains = 1]
   engine (and every engine until its first hot crossing) never pays
   for domain creation. *)
let ensure_pool (e : t) : pool =
  match e.pool with
  | Some p -> p
  | None ->
    let p =
      {
        p_mu = Mutex.create ();
        p_cv = Condition.create ();
        p_pending = [];
        p_done = [];
        p_stop = false;
        p_domains = [];
      }
    in
    let je = e.jenv in
    p.p_domains <-
      List.init (max 1 (e.config.domains - 1)) (fun _ -> Domain.spawn (fun () -> worker_loop je p));
    e.pool <- Some p;
    p

(* Install a finished region unit into the engine.  [async] selects the
   publish protocol: the synchronous path publishes unconditionally
   (nothing can have moved under it — the job ran inline), the async
   path re-hashes the members' live guest bytes and then publishes
   through the page-generation check, rejecting the install as stale
   when either moved while the job was in flight. *)
let install_region ~async (e : t) (job : region_job) (res : region_result) : unit =
  let s = e.stats in
  let head = job.j_head in
  let members = job.j_members in
  let el = job.j_req.rq_el and mmu_on = job.j_req.rq_mmu in
  let pa_page = job.j_req.rq_pa_page in
  let region =
    {
      t_key = head.t_key;
      t_va = head.t_va;
      t_program = res.r_program;
      t_n_guest = res.r_n_guest;
      t_n_host = res.r_n_host;
      t_bytes = Bytes.length res.r_code;
      t_chain = None;
      t_exec_count = 0;
      t_cycles = 0;
      t_tier = 1;
      t_members = List.length members;
      t_succs = [];
      t_exits = Array.make res.r_n_exits None;
    }
  in
  (* The head's page entry already covers the region: all members live
     on the head's page, so one SMC invalidation sweeps the region unit
     and every member, demoting the whole page to tier 0. *)
  let published =
    if not async then begin
      Codecache.publish e.cache region.t_key region;
      true
    end
    else
      Int64.equal (live_guest_hash e job) job.j_guest_hash
      && Codecache.publish_if e.cache region.t_key ~gen:job.j_gen region
  in
  if not published then begin
    (* Stale: the page was invalidated (or rewritten) since enqueue.
       Drop the result and demote the head so profiling can retry
       against the current bytes. *)
    s.jobs_stale <- s.jobs_stale + 1;
    head.t_tier <- 0;
    head.t_exec_count <- 0
  end
  else begin
    add_stats s res.r_stats;
    e.validation_log <- append_capped e.validation_log res.r_validation_log;
    e.analysis_log <- append_capped e.analysis_log res.r_analysis_log;
    e.reloc_log <- append_capped e.reloc_log res.r_reloc_log;
    (if async then charge_translate_async else charge_translate) e
      ((1400 * res.r_n_guest) + (260 * res.r_n_host));
    if async then s.jobs_installed <- s.jobs_installed + 1;
    List.iter (fun m -> m.t_tier <- 1) members;
    (* Drop the replaced head's chain edge, and unlink every chain edge
       that targets the replaced head record: predecessors must relink
       through the cache (one dispatch lookup) so the hot path migrates
       into the region unit instead of chaining into the orphaned tier-0
       head forever. *)
    head.t_chain <- None;
    Codecache.iter
      (fun _ tr ->
        (match tr.t_chain with
        | Some (_, _, tgt) when tgt == head -> tr.t_chain <- None
        | _ -> ());
        Array.iteri
          (fun i edge ->
            match edge with
            | Some (_, _, tgt) when tgt == head -> tr.t_exits.(i) <- None
            | _ -> ())
          tr.t_exits)
      e.cache;
    (match e.sanitizer with
    | Some sa ->
      List.iter
        (fun m ->
          let pa_m = Int64.logor pa_page (Int64.logand m.t_va 0xFFFL) in
          Hvm.Sanitize.record_translation sa ~mem:e.machine.Machine.mem ~pa:pa_m ~el
            ~mmu:mmu_on ~len:(4 * m.t_n_guest))
        members
    | None -> ());
    (* Persistence of the job's certificate, with the per-member
       VAs/lengths as part of the key: a warm boot reuses the unit only
       when runtime profiling selects the identical member set.  Regions
       whose members failed to re-decode (guest instr counts disagree)
       are never persisted. *)
    match res.r_cert with
    | Some cert
      when res.r_n_guest = List.fold_left (fun a m -> a + m.t_n_guest) 0 members
           && List.for_all (fun m -> m.t_n_guest > 0) members -> (
      match e.aot with
      | Some cache ->
        let pa_head, _, _ = head.t_key in
        let mems = List.map (fun m -> (m.t_va, e.guest.Ops.insn_size * m.t_n_guest)) members in
        let guest = Buffer.create 256 in
        List.iter
          (fun (va_m, len) ->
            let pa_m = Int64.logor pa_page (Int64.logand va_m 0xFFFL) in
            Buffer.add_bytes guest (read_guest_bytes e ~pa:pa_m ~len))
          mems;
        Aotcache.store cache
          {
            Aotcache.e_kind = 1;
            e_va = head.t_va;
            e_pa = pa_head;
            e_el = el;
            e_mmu = mmu_on;
            e_cfg = aot_cfg_sig e;
            e_members = Array.of_list mems;
            e_guest = Buffer.to_bytes guest;
            e_n_slots = res.r_n_slots;
            e_n_exits = res.r_n_exits;
            e_n_guest = res.r_n_guest;
            e_n_host = res.r_n_host;
            e_code = res.r_code;
            e_hash = cert.Hostir.Reloc.c_hash;
          };
        s.aot_stores <- s.aot_stores + 1
      | None -> ())
    | Some _ | None -> ()
  end

(* Queue a job for the worker pool.  The queue is bounded, so a burst
   of hot crossings cannot pile up unbounded translation work; a
   dropped job demotes the head (and takes back its promotion count),
   so the block re-crosses the threshold later and retries. *)
let enqueue_job (e : t) (job : region_job) : unit =
  let s = e.stats in
  let p = ensure_pool e in
  Mutex.lock p.p_mu;
  if List.length p.p_pending < job_queue_depth then begin
    p.p_pending <- p.p_pending @ [ job ];
    Condition.broadcast p.p_cv;
    Mutex.unlock p.p_mu;
    s.jobs_enqueued <- s.jobs_enqueued + 1
  end
  else begin
    Mutex.unlock p.p_mu;
    s.jobs_dropped <- s.jobs_dropped + 1;
    s.promotions <- s.promotions - 1;
    job.j_head.t_tier <- 0;
    job.j_head.t_exec_count <- 0
  end

(* Install whatever the workers have finished.  Called from the run
   loop at dispatch granularity — the vCPU is the only publisher and
   invalidator, so every interleaving of install with lookup and SMC
   invalidation happens at this one well-defined point.  Under
   [stress_seed], a seeded PRNG jitters how many completions are taken
   per call, deterministically exploring install/invalidate/lookup
   orderings for the stress harness. *)
let drain_jobs (e : t) : unit =
  match e.pool with
  | None -> ()
  | Some p ->
    Mutex.lock p.p_mu;
    let avail = p.p_done in
    let n_avail = List.length avail in
    let n_take =
      match e.stress_prng with
      | None -> n_avail
      | Some rng ->
        if n_avail = 0 then 0
        else if Dbt_util.Prng.bool rng then 0 (* hold every completion this tick *)
        else Dbt_util.Prng.int rng (n_avail + 1)
    in
    let rec take n = function
      | x :: rest when n > 0 ->
        let a, b = take (n - 1) rest in
        (x :: a, b)
      | l -> ([], l)
    in
    let taken, rest = take n_take avail in
    p.p_done <- rest;
    Mutex.unlock p.p_mu;
    List.iter
      (fun job ->
        e.stats.jobs_completed <- e.stats.jobs_completed + 1;
        match job.j_outcome with
        | Some (R_ok res) -> install_region ~async:true e job res
        | Some (R_exn exn) -> raise exn
        | None -> assert false)
      taken

(* A block reaching the hot threshold must run pipeline-quality code
   from here on — the template tier is a cold-boot device, not a
   steady-state one.  Re-translate the template-stitched record through
   the full pipeline; the replacement inherits the profile, and chain
   edges into the replaced record are unlinked so predecessors relink
   through the cache (one dispatch lookup) into the new code. *)
let repipeline (e : t) sys (old : translation) : translation =
  let pa, el, mmu_on = old.t_key in
  let fresh = translate_block_pipeline e sys ~va:old.t_va ~pa ~el ~mmu_on in
  fresh.t_exec_count <- old.t_exec_count;
  fresh.t_succs <- old.t_succs;
  old.t_chain <- None;
  Codecache.iter
    (fun _ tr ->
      (match tr.t_chain with
      | Some (_, _, tgt) when tgt == old -> tr.t_chain <- None
      | _ -> ());
      Array.iteri
        (fun i edge ->
          match edge with
          | Some (_, _, tgt) when tgt == old -> tr.t_exits.(i) <- None
          | _ -> ())
        tr.t_exits)
    e.cache;
  fresh

(* Promote a hot tier-0 (or template) block: select members, then
   either translate the region inline ([domains <= 1] — bit-identical
   in cycles and stats to the pre-concurrency engine) or enqueue the
   formation job and keep executing the current code while a worker
   domain translates.  Template-tier records among the head and members
   are first re-translated through the pipeline, so every tier-1
   translation (and every record a failed job demotes back to tier 0)
   is pipeline-built. *)
let promote_block (e : t) sys (head : translation) : unit =
  let s = e.stats in
  let pa_head, el, mmu_on = head.t_key in
  let pa_page = Bits.align_down pa_head 4096 in
  s.promotions <- s.promotions + 1;
  let was_template = head.t_tier < 0 in
  head.t_tier <- 1;
  let members, self_loop = select_members e head in
  if List.length members > 1 || self_loop then begin
    (* A region unit will replace the head's cache entry, and the job
       re-translates every member from guest bytes through the full
       pipeline into the unit — so no stand-alone re-translation is
       needed: the hot path (region entry + chained exits) runs
       pipeline-built code, and the members' stand-alone records only
       serve stray direct dispatches. *)
    if not (aot_try_region e ~head ~members ~pa_page ~el ~mmu_on) then begin
      let job = make_region_job e ~head ~members in
      if e.config.domains <= 1 then
        install_region ~async:false e job (run_region_job e.jenv job.j_req)
      else enqueue_job e job
    end
  end
  else if was_template then begin
    (* Lone hot head, no region formed: its record stays published, so
       re-translate it through the pipeline at the promoted tier. *)
    let fresh = repipeline e sys head in
    fresh.t_tier <- 1
  end

(* Stop the worker pool: discard pending jobs, join the domains.  Safe
   to call repeatedly and on a [domains = 1] engine (no-op); the pool
   respawns on the next enqueue. *)
let shutdown (e : t) : unit =
  match e.pool with
  | None -> ()
  | Some p ->
    Mutex.lock p.p_mu;
    p.p_stop <- true;
    p.p_pending <- [];
    Condition.broadcast p.p_cv;
    Mutex.unlock p.p_mu;
    List.iter Domain.join p.p_domains;
    e.pool <- None

(* --- dispatch loop ------------------------------------------------------------------- *)

type exit_reason = Poweroff of int | Cycle_limit | Block_limit

let lookup_fetch (e : t) sys va ~el ~mmu_on =
  let va_page = Bits.align_down va 4096 in
  match Hashtbl.find_opt e.itlb (va_page, el, mmu_on) with
  | Some pa_page -> Ok (Int64.logor pa_page (Int64.logand va 0xFFFL))
  | None -> (
    match fetch_translate e sys va with
    | Error () -> Error ()
    | Ok pa ->
      Hashtbl.replace e.itlb (va_page, el, mmu_on) (Bits.align_down pa 4096);
      Ok pa)

(* Enter a block at [va] under exception level [el]: set the host ring
   (guest EL0 runs in host ring 3, everything else ring 0) and, when
   sanitizing, audit the ring/user-bit invariant.  Also called at chain
   transitions, where the exception level may have changed mid-chain. *)
let enter_block (e : t) ~el ~va =
  (* The dispatcher re-validated (EL, MMU regime): clear the region
     poison flag so tier-1 regions run until the next regime change. *)
  e.ctx.Exec.regs.(Hir.region_poison_preg) <- 0L;
  e.machine.Machine.ring <- (if el = 0 then 3 else 0);
  match e.sanitizer with
  | None -> ()
  | Some s ->
    let asid = if Int64.shift_right_logical va 47 = 0L then 0 else 1 in
    Hvm.Sanitize.audit_ring s ~machine:e.machine ~roots:e.roots ~asid ~guest_el:el ~pc:va

let prepare_as (e : t) va =
  (* Set the active page-table set to match the next PC's half. *)
  let target_as = if Int64.shift_right_logical va 47 = 0L then 0 else 1 in
  if target_as <> e.current_as then begin
    e.current_as <- target_as;
    Machine.set_page_table e.machine ~root:e.roots.(target_as) ~pcid:target_as
      ~keep_tlb:e.config.pcid
  end;
  trace e "PREPARE va=%Lx as=%d\n%!" va target_as;
  e.ctx.Exec.regs.(Dag.as_tag_preg) <- as_tag_value target_as

let run ?(max_cycles = max_int) ?(max_blocks = max_int) (e : t) : exit_reason =
  let sys = Common.sys_ctx e.guest e.ctx in
  (* Region safepoints honour this run's cycle ceiling. *)
  e.ctx.Exec.poll_deadline <- max_cycles;
  let result = ref None in
  (try
     while !result = None do
       if e.syscon.Hvm.Device.Syscon.poweroff then
         result := Some (Poweroff e.syscon.Hvm.Device.Syscon.exit_code)
       else if e.machine.Machine.cycles > max_cycles then result := Some Cycle_limit
       else if e.stats.blocks_executed > max_blocks then result := Some Block_limit
       else begin
         (* Install any translations the worker domains finished: the
            vCPU is the only publisher, so completed jobs land at
            dispatch granularity — one well-defined interleaving point
            against lookups and SMC invalidation. *)
         if Option.is_some e.pool then drain_jobs e;
         (* Interrupts are taken at block boundaries. *)
         if Machine.irq_pending e.machine then ignore (e.guest.Ops.deliver_irq sys);
         let el = e.guest.Ops.privilege_level sys in
         let mmu_on = e.guest.Ops.mmu_enabled sys in
         let va = e.ctx.Exec.pc in
         enter_block e ~el ~va;
         Machine.charge e.machine Cost.dispatch_lookup;
         match lookup_fetch e sys va ~el ~mmu_on with
         | Error () -> () (* instruction abort redirected the PC *)
         | Ok pa -> (
           let key = (pa, el, mmu_on) in
           let tr =
             match Codecache.lookup e.cache key with
             | Some tr -> tr
             | None -> translate_block e sys ~va ~pa ~el ~mmu_on
           in
           prepare_as e va;
           (* Execute, following chain links while they hit. *)
           try
             let cur = ref tr in
             let continue_chain = ref true in
             while !continue_chain do
               let c0 = e.machine.Machine.cycles in
               Machine.charge e.machine Cost.block_entry;
               let slot = ref 0 in
               (* A region unit is exactly a translation with exit sites
                  (a self-loop region has t_members = 1 but one site). *)
               if Array.length !cur.t_exits > 0 then begin
                 (* Region unit: each member entry polls a block-budget
                    safepoint, so the run loop's max_blocks bound holds
                    at block granularity even without dispatching. *)
                 let budget =
                   if max_blocks = max_int then max_int
                   else max 1 (max_blocks - e.stats.blocks_executed)
                 in
                 e.ctx.Exec.poll_budget <- budget;
                 slot := Exec.run e.ctx !cur.t_program;
                 let consumed = max 1 (budget - e.ctx.Exec.poll_budget) in
                 e.stats.blocks_executed <- e.stats.blocks_executed + consumed;
                 e.stats.region_entries <- e.stats.region_entries + 1;
                 e.stats.region_block_execs <- e.stats.region_block_execs + consumed
               end
               else begin
                 ignore (Exec.run e.ctx !cur.t_program);
                 e.stats.blocks_executed <- e.stats.blocks_executed + 1
               end;
               !cur.t_exec_count <- !cur.t_exec_count + 1;
               !cur.t_cycles <- !cur.t_cycles + (e.machine.Machine.cycles - c0);
               let next_va = e.ctx.Exec.pc in
               let next_el = e.guest.Ops.privilege_level sys in
               if e.config.tiering && !cur.t_tier <= 0 then begin
                 record_succ !cur next_va next_el;
                 if !cur.t_n_guest > 0 && !cur.t_exec_count >= e.config.hot_threshold then
                   promote_block e sys !cur
               end;
               if
                 e.config.chaining
                 && (not (Machine.irq_pending e.machine))
                 && e.stats.blocks_executed <= max_blocks
                 && e.machine.Machine.cycles <= max_cycles
               then begin
                 (* Regions chain per exit site (each member's dispatch
                    chunk has its own patchable slot); plain blocks keep
                    the single chain edge.  Slot 0 is the safepoint bail
                    path and is never patched: the bail reasons (poison,
                    budget, irq) all need the checks above or the full
                    dispatcher. *)
                 let site =
                   if Array.length !cur.t_exits > 0 then
                     if !slot >= 1 && !slot <= Array.length !cur.t_exits then Some (!slot - 1)
                     else None
                   else Some (-1) (* plain block: the t_chain edge *)
                 in
                 let edge =
                   match site with
                   | Some s when s >= 0 -> !cur.t_exits.(s)
                   | Some _ -> !cur.t_chain
                   | None -> None
                 in
                 match edge with
                 | Some (cva, cel, target) when cva = next_va && cel = next_el ->
                   Machine.charge e.machine Cost.branch;
                   e.stats.chain_hits <- e.stats.chain_hits + 1;
                   enter_block e ~el:next_el ~va:next_va;
                   cur := target
                 | _ -> (
                   (* Try to link: only when the target is already
                      translated and the MMU regime is unchanged. *)
                   let mmu_on' = e.guest.Ops.mmu_enabled sys in
                   if mmu_on' = mmu_on && Int64.shift_right_logical next_va 47 = Int64.shift_right_logical va 47 then begin
                     match Hashtbl.find_opt e.itlb (Bits.align_down next_va 4096, next_el, mmu_on') with
                     | Some pa_page -> (
                       let npa = Int64.logor pa_page (Int64.logand next_va 0xFFFL) in
                       match Codecache.lookup e.cache (npa, next_el, mmu_on') with
                       | Some target ->
                         (match site with
                         | Some s when s >= 0 -> !cur.t_exits.(s) <- Some (next_va, next_el, target)
                         | Some _ -> !cur.t_chain <- Some (next_va, next_el, target)
                         | None -> ());
                         Machine.charge e.machine Cost.dispatch_lookup;
                         enter_block e ~el:next_el ~va:next_va;
                         cur := target
                       | None -> continue_chain := false)
                     | None -> continue_chain := false
                   end
                   else continue_chain := false)
               end
               else continue_chain := false
             done
           with Ops.Guest_trap -> () (* guest exception taken mid-block *))
       end
     done
   with Machine.Powered_off code -> result := Some (Poweroff code));
  Option.get !result

(* --- guest setup utilities -------------------------------------------------------------- *)

let sys (e : t) = Common.sys_ctx e.guest e.ctx

let load_image (e : t) ~addr (image : bytes) = Hvm.Mem.blit_in e.machine.Machine.mem ~addr image

let set_entry (e : t) entry = e.guest.Ops.reset (sys e) ~entry

let uart_output (e : t) = Hvm.Device.Uart.output e.uart
let cycles (e : t) = e.machine.Machine.cycles

(* The virtual-time split: [cycles] = wall clock; [jit_cycles] is the
   translation-side share (JIT + AOT loads); [exec_cycles] the
   guest-visible remainder that device time follows.  A warm boot must
   reproduce [exec_cycles] bit-for-bit. *)
let jit_cycles (e : t) = e.machine.Machine.jit_cycles
let exec_cycles (e : t) = Machine.guest_cycles e.machine

(* The share of [jit_cycles] spent on worker domains (0 when
   [domains = 1]): translate work the concurrent JIT removed from the
   vCPU's critical path. *)
let async_jit_cycles (e : t) = e.machine.Machine.async_jit_cycles
let reloc_log (e : t) = e.reloc_log
let aot_entry_count (e : t) = match e.aot with Some c -> Aotcache.entry_count c | None -> 0
let cache_keys (e : t) = Codecache.keys e.cache
let cache_shards (e : t) = Codecache.n_shards e.cache

(* Per-translation execution statistics, for the Fig. 21 code-quality
   analysis: (translation VA, guest instrs, host instrs, executions,
   accumulated cycles, tier). *)
let block_stats (e : t) =
  Codecache.fold
    (fun _ tr acc ->
      (tr.t_va, tr.t_n_guest, tr.t_n_host, tr.t_exec_count, tr.t_cycles, tr.t_tier) :: acc)
    e.cache []

(* Per-opcode template miss counts, heaviest first (the [templates]
   subcommand's miss table). *)
let template_miss_table (e : t) : (string * int) list =
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) e.template_miss []
  |> List.sort (fun (n1, c1) (n2, c2) ->
       if c1 <> c2 then compare c2 c1 else compare n1 n2)

(* The engine's template table report, empty when the table was never
   touched (templates off, or nothing translated). *)
let template_report (e : t) : Hostir.Template.form_report list =
  match e.templates with Some tt -> Hostir.Template.report tt | None -> []

let template_table (e : t) : Hostir.Template.t = templates_of e
