(* The Captive DBT hypervisor engine (paper Sec. 2.3, 2.4, 2.6, 2.7).

   - Translations are produced by the four-phase pipeline: decode ->
     translate (generator functions over the invocation DAG) -> register
     allocation -> encode; each phase is timed for Fig. 20.
   - The code cache is indexed by guest *physical* address (plus exception
     level and MMU regime); guest page-table changes do not invalidate it.
   - Guest page tables are mapped onto host page tables on demand by the
     host-page-fault handler; guest user code runs in host ring 3.
   - Two host page-table sets cover the guest's lower (TTBR0) and upper
     (TTBR1) address spaces; generated code checks the VA split and
     switches sets under distinct PCIDs (Sec. 2.7.5).
   - Self-modifying code is caught by write-protecting host mappings of
     guest pages that contain translated code (Sec. 2.6). *)

module Exec = Hostir.Exec
module Encode = Hostir.Encode
module Dag = Hostir.Dag
module Regalloc = Hostir.Regalloc
module Hir = Hostir.Hir
module Machine = Hvm.Machine
module Cost = Hvm.Cost
module Ops = Guest.Ops
module Bits = Dbt_util.Bits

type config = {
  hw_fp : bool; (* hardware FP (Captive) vs softfloat helpers (Sec. 3.6.2) *)
  chaining : bool;
  pcid : bool; (* use PCIDs when switching address-space roots *)
  split_va_check : bool; (* 64-bit guest address-space split handling *)
  mem_size : int;
  max_block : int; (* maximum guest instructions per translation block *)
  sanitize : bool; (* shadow-oracle MMU invariant checking (Hvm.Sanitize) *)
  sanitize_every : int; (* extra periodic checkpoint every N translated blocks *)
}

let default_config =
  {
    hw_fp = true;
    chaining = true;
    pcid = true;
    split_va_check = true;
    mem_size = 256 * 1024 * 1024;
    max_block = 64;
    sanitize = false;
    sanitize_every = 32;
  }

type phase_stats = {
  mutable t_decode : float;
  mutable t_translate : float;
  mutable t_regalloc : float;
  mutable t_encode : float;
  mutable blocks_translated : int;
  mutable guest_instrs_translated : int;
  mutable host_instrs_emitted : int;
  mutable host_bytes_emitted : int;
  mutable dead_marked : int;
  mutable spills : int;
  mutable blocks_executed : int;
  mutable chain_hits : int;
  mutable smc_invalidations : int;
}

let new_phase_stats () =
  {
    t_decode = 0.;
    t_translate = 0.;
    t_regalloc = 0.;
    t_encode = 0.;
    blocks_translated = 0;
    guest_instrs_translated = 0;
    host_instrs_emitted = 0;
    host_bytes_emitted = 0;
    dead_marked = 0;
    spills = 0;
    blocks_executed = 0;
    chain_hits = 0;
    smc_invalidations = 0;
  }

type translation = {
  t_key : int64 * int * bool;
  t_va : int64; (* VA it was translated from (for per-block statistics) *)
  t_program : Encode.program;
  t_n_guest : int;
  t_n_host : int;
  t_bytes : int;
  mutable t_chain : (int64 * int * translation) option; (* expected (va, el) -> target *)
  mutable t_exec_count : int;
  mutable t_cycles : int;
}

type t = {
  guest : Ops.ops;
  config : config;
  machine : Machine.t;
  mutable ctx : Exec.ctx;
  cache : (int64 * int * bool, translation) Hashtbl.t;
  by_page : (int64, (int64 * int * bool) list ref) Hashtbl.t;
  protected : (int64, unit) Hashtbl.t; (* guest phys pages holding code *)
  mappings : (int64, (int * int64) list ref) Hashtbl.t; (* phys page -> (as, masked va page) *)
  roots : int64 array; (* host page-table roots: [|low; high|] *)
  mutable current_as : int;
  itlb : (int64 * int * bool, int64) Hashtbl.t; (* fetch va page -> pa page *)
  sanitizer : Hvm.Sanitize.t option;
  stats : phase_stats;
  (* devices *)
  uart : Hvm.Device.Uart.state;
  timer : Hvm.Device.Timer.state;
  syscon : Hvm.Device.Syscon.state;
}

let now () = Unix.gettimeofday ()
(* Optional fault/transition tracing for debugging guest bring-up. *)
let tracing = Sys.getenv_opt "CAPTIVE_TRACE" <> None
let trace_events = ref 0

let trace fmt =
  if tracing && !trace_events < 400 then begin
    incr trace_events;
    Printf.eprintf fmt
  end
  else Printf.ifprintf stderr fmt

(* --- engine construction ------------------------------------------------------ *)

let as_tag_value = function 0 -> 0L | _ -> 0x1FFFFL (* va >> 47 for each half *)

let make_machine config =
  let intc = Hvm.Device.Intc.create () in
  let uart = Hvm.Device.Uart.create () in
  let timer = Hvm.Device.Timer.create intc in
  let syscon = Hvm.Device.Syscon.create () in
  let devices =
    [
      Hvm.Device.Intc.device intc;
      Hvm.Device.Uart.device uart;
      Hvm.Device.Timer.device timer;
      Hvm.Device.Syscon.device syscon;
    ]
  in
  let machine = Machine.create ~mem_size:config.mem_size ~devices ~intc () in
  (machine, uart, timer, syscon)

let lower_intrinsic config name : Dag.lowering =
  let is_fp = String.length name > 2 && (String.sub name 0 2 = "fp" || String.length name > 4 && String.sub name 0 4 = "sint" || String.sub name 0 4 = "uint") in
  if (not config.hw_fp) && is_fp then
    match Common.softfloat_index name with Some h -> Dag.L_helper h | None -> Dag.L_inline
  else Dag.L_inline

let rec create ?(config = default_config) (guest : Ops.ops) : t =
  let machine, uart, timer, syscon = make_machine config in
  machine.Machine.paging <- true;
  let roots = [| Hvm.Palloc.alloc machine.Machine.palloc; Hvm.Palloc.alloc machine.Machine.palloc |] in
  machine.Machine.cr3 <- roots.(0);
  let engine_ref = ref None in
  let engine () = Option.get !engine_ref in
  let sys ctx = Common.sys_ctx guest ctx in
  let charge_int ctx = Machine.charge ctx.Exec.machine Cost.soft_interrupt in
  let helpers = Array.make (Common.first_softfloat + List.length Common.softfloat_names)
      { Exec.fn = (fun _ _ -> 0L); cost = 0 } in
  helpers.(Common.h_coproc_read) <-
    { Exec.fn = (fun ctx args -> guest.Ops.coproc_read (sys ctx) args.(0)); cost = 30 };
  helpers.(Common.h_coproc_write) <-
    {
      Exec.fn =
        (fun ctx args ->
          charge_int ctx;
          (match guest.Ops.coproc_write (sys ctx) args.(0) args.(1) with
          | Ops.Ce_none -> ()
          | Ops.Ce_mmu_changed | Ops.Ce_tlb_flush ->
            let e = engine () in
            flush_host_mappings e);
          0L);
      cost = 30;
    };
  (* Guest exception entry/return is a direct transfer inside the
     ring-0 execution engine - no software interrupt needed. *)
  helpers.(Common.h_take_exception) <-
    {
      Exec.fn =
        (fun ctx args ->
          guest.Ops.take_exception (sys ctx) ~ec:args.(0) ~iss:args.(1);
          0L);
      cost = 60;
    };
  helpers.(Common.h_eret) <-
    {
      Exec.fn =
        (fun ctx _ ->
          guest.Ops.eret (sys ctx);
          0L);
      cost = 60;
    };
  helpers.(Common.h_tlb_flush) <-
    {
      Exec.fn =
        (fun ctx _ ->
          charge_int ctx;
          flush_host_mappings (engine ());
          0L);
      cost = 40;
    };
  helpers.(Common.h_tlb_flush_page) <-
    {
      Exec.fn =
        (fun ctx _args ->
          charge_int ctx;
          (* Single-page invalidation: conservatively flush everything. *)
          flush_host_mappings (engine ());
          0L);
      cost = 40;
    };
  helpers.(Common.h_halt) <- { Exec.fn = (fun _ _ -> raise (Machine.Powered_off 0)); cost = 0 };
  helpers.(Common.h_wfi) <-
    {
      Exec.fn =
        (fun ctx _ ->
          (* Fast-forward to the next timer event if one is pending. *)
          let e = engine () in
          let t = e.timer in
          if t.Hvm.Device.Timer.enabled && t.Hvm.Device.Timer.irq_enabled then
            Machine.charge ctx.Exec.machine (t.Hvm.Device.Timer.value + 1)
          else Machine.charge ctx.Exec.machine 1000;
          0L);
      cost = 10;
    };
  helpers.(Common.h_barrier) <- { Exec.fn = (fun _ _ -> 0L); cost = 0 };
  helpers.(Common.h_as_switch) <-
    {
      Exec.fn =
        (fun ctx args ->
          let e = engine () in
          let target_as = if args.(0) = 0L then 0 else 1 in
          e.current_as <- target_as;
          Machine.set_page_table ctx.Exec.machine ~root:e.roots.(target_as) ~pcid:target_as
            ~keep_tlb:e.config.pcid;
          ctx.Exec.regs.(Dag.as_tag_preg) <- as_tag_value target_as;
          trace "SWITCH as=%d pc=%Lx\n%!" target_as ctx.Exec.pc;
          0L);
      cost = 5;
    };
  List.iteri
    (fun i name -> helpers.(Common.first_softfloat + i) <- Common.softfloat_helper name)
    Common.softfloat_names;
  let fault_handler ctx access va ~bits ~value = handle_fault (engine ()) ctx access va ~bits ~value in
  let ctx = Exec.create ~machine ~helpers ~fault_handler in
  let e =
    {
      guest;
      config;
      machine;
      ctx;
      cache = Hashtbl.create 1024;
      by_page = Hashtbl.create 256;
      protected = Hashtbl.create 64;
      mappings = Hashtbl.create 1024;
      roots;
      current_as = 0;
      itlb = Hashtbl.create 256;
      sanitizer = (if config.sanitize then Some (Hvm.Sanitize.create ()) else None);
      stats = new_phase_stats ();
      uart;
      timer;
      syscon;
    }
  in
  engine_ref := Some e;
  guest.Ops.reset (sys ctx) ~entry:0L;
  e

(* Invalidate all host page-table mappings of the guest halves (the
   paper's TLB-flush intercept: clear the low 256 PML4 entries of each
   set and flush the host TLB). *)
and flush_host_mappings (e : t) =
  Array.iter (fun root -> Hvm.Pagetable.clear_low_half e.machine.Machine.mem e.machine.Machine.palloc ~root) e.roots;
  Hvm.Tlb.flush_all e.machine.Machine.tlb;
  Machine.charge e.machine Cost.tlb_flush;
  Hashtbl.reset e.mappings;
  Hashtbl.reset e.itlb;
  (match e.sanitizer with Some s -> Hvm.Sanitize.record_clear_mappings s | None -> ());
  sanitize_check e ~reason:"flush"

(* Shadow-oracle checkpoint (config.sanitize): sweep the real MMU state
   against the sanitizer's shadow.  Free by construction when off. *)
and sanitize_check (e : t) ~reason =
  match e.sanitizer with
  | Some s -> Hvm.Sanitize.check s ~machine:e.machine ~roots:e.roots ~reason
  | None -> ()

(* --- host page fault handling (Sec. 2.7.3) --------------------------------------- *)

and device_of e pa = Machine.find_device e.machine pa

and invalidate_page e phys_page =
  (match Hashtbl.find_opt e.by_page phys_page with
  | Some keys ->
    List.iter (fun k -> Hashtbl.remove e.cache k) !keys;
    Hashtbl.remove e.by_page phys_page;
    e.stats.smc_invalidations <- e.stats.smc_invalidations + 1
  | None -> ());
  Hashtbl.remove e.protected phys_page;
  (match e.sanitizer with Some s -> Hvm.Sanitize.record_invalidate_page s ~pa_page:phys_page | None -> ());
  sanitize_check e ~reason:"invalidate"

and protect_page e phys_page =
  if not (Hashtbl.mem e.protected phys_page) then begin
    Hashtbl.replace e.protected phys_page ();
    (match e.sanitizer with Some s -> Hvm.Sanitize.record_protect_page s ~pa_page:phys_page | None -> ());
    (* Downgrade any existing writable host mapping of this guest page. *)
    match Hashtbl.find_opt e.mappings phys_page with
    | Some lst ->
      List.iter
        (fun (asid, va_page) ->
          let root = e.roots.(asid) in
          match fst (Hvm.Pagetable.walk e.machine.Machine.mem ~root va_page) with
          | Some (pte_addr, pte) when Int64.logand pte Hvm.Pagetable.pte_present <> 0L ->
            let flags = Hvm.Pagetable.flags_of_bits pte in
            Hvm.Pagetable.protect e.machine.Machine.mem ~root va_page
              { flags with Hvm.Pagetable.writable = false };
            ignore pte_addr;
            Hvm.Tlb.flush_page e.machine.Machine.tlb (Int64.shift_right_logical va_page 12)
          | _ -> ())
        !lst
    | None -> ()
  end

and handle_fault (e : t) ctx (access : Machine.access) va ~bits ~value : Exec.fault_response =
  trace "FAULT va=%Lx access=%s as=%d ring=%d pc=%Lx tag=%Lx\n%!" va
    (match access with Machine.Read -> "R" | Machine.Write -> "W" | Machine.Exec -> "X")
    e.current_as e.machine.Machine.ring ctx.Exec.pc ctx.Exec.regs.(Dag.as_tag_preg);
  let sys = Common.sys_ctx e.guest ctx in
  (* Reconstruct the full guest VA from the masked lower-half address. *)
  let gva = if e.current_as = 1 then Int64.logor va 0xFFFF_8000_0000_0000L else va in
  match e.guest.Ops.mmu_translate sys ~access:(Common.access_of access) gva with
  | Error fault ->
    Machine.charge e.machine Cost.guest_fault_bookkeeping;
    sanitize_check e ~reason:"guest-fault";
    e.guest.Ops.data_abort sys ~va:gva ~access:(Common.access_of access) ~fault;
    raise Ops.Guest_trap
  | Ok (pa, perms) -> (
    let el = e.guest.Ops.privilege_level sys in
    let allowed =
      (el > 0 || perms.Ops.puser)
      && (access <> Machine.Write || perms.Ops.pw)
    in
    if not allowed then begin
      Machine.charge e.machine Cost.guest_fault_bookkeeping;
      sanitize_check e ~reason:"guest-fault";
      e.guest.Ops.data_abort sys ~va:gva ~access:(Common.access_of access)
        ~fault:(Ops.Gf_permission 3);
      raise Ops.Guest_trap
    end;
    match device_of e pa with
    | Some d ->
      (* MMIO: emulated by the hypervisor (an exit from the HVM). *)
      Machine.charge e.machine Cost.soft_interrupt;
      Machine.sync_devices e.machine;
      let off = Int64.to_int (Int64.sub pa d.Hvm.Device.base) in
      (match access with
      | Machine.Write ->
        d.Hvm.Device.write off bits (Option.value value ~default:0L);
        Exec.Mmio_done
      | Machine.Read | Machine.Exec -> Exec.Mmio_value (d.Hvm.Device.read off bits))
    | None ->
      let phys_page = Bits.align_down pa 4096 in
      let va_page = Bits.align_down va 4096 in
      (* Self-modifying code: a permitted write to a protected code page
         invalidates that page's translations and restores write access. *)
      if access = Machine.Write && Hashtbl.mem e.protected phys_page then
        invalidate_page e phys_page;
      let writable = perms.Ops.pw && not (Hashtbl.mem e.protected phys_page) in
      let flags =
        {
          Hvm.Pagetable.writable;
          user = perms.Ops.puser;
          executable = perms.Ops.px;
        }
      in
      let root = e.roots.(e.current_as) in
      Hvm.Pagetable.map e.machine.Machine.mem e.machine.Machine.palloc ~root va_page phys_page flags;
      (* The PTE just changed: shoot down any stale hardware-TLB entry
         for this page, or the retry re-faults through the old
         translation forever — e.g. an SMC write to a code page that was
         previously read (TLB-resident, read-only) and has just been
         remapped writable. *)
      Hvm.Tlb.flush_page e.machine.Machine.tlb (Int64.shift_right_logical va_page 12);
      (let lst =
         match Hashtbl.find_opt e.mappings phys_page with
         | Some l -> l
         | None ->
           let l = ref [] in
           Hashtbl.replace e.mappings phys_page l;
           l
       in
       if not (List.mem (e.current_as, va_page) !lst) then lst := (e.current_as, va_page) :: !lst);
      (match e.sanitizer with
      | Some s -> Hvm.Sanitize.record_map s ~asid:e.current_as ~va_page ~pa_page:phys_page ~flags
      | None -> ());
      sanitize_check e ~reason:"fault";
      Exec.Retry)

(* --- instruction fetch and translation -------------------------------------------- *)

let fetch_translate (e : t) sys va : (int64, unit) result =
  (* Translate a fetch VA to PA via the guest MMU; takes the guest
     instruction-abort path on failure. *)
  match e.guest.Ops.mmu_translate sys ~access:Ops.Afetch va with
  | Error fault ->
    e.guest.Ops.insn_abort sys ~va ~fault;
    Error ()
  | Ok (pa, perms) ->
    let el = e.guest.Ops.privilege_level sys in
    if (el = 0 && not perms.Ops.puser) || not perms.Ops.px then begin
      e.guest.Ops.insn_abort sys ~va ~fault:(Ops.Gf_permission 3);
      Error ()
    end
    else Ok pa

let field_fn (e : t) sys (d : Adl.Decode.decoded) =
  let el = Int64.of_int (e.guest.Ops.privilege_level sys) in
  fun name ->
    if name = "__el" then el
    else
      match List.assoc_opt name d.Adl.Decode.field_values with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "no field %s in %s" name d.Adl.Decode.name)

let translate_block (e : t) sys ~va ~pa ~el ~mmu_on : translation =
  let s = e.stats in
  let model = e.guest.Ops.model in
  (* Phase 1: decode one guest basic block. *)
  let t0 = now () in
  let decoded = ref [] in
  let n = ref 0 in
  let undefined_stub = ref false in
  let continue_ = ref true in
  while !continue_ do
    let insn_va = Int64.add va (Int64.of_int (4 * !n)) in
    let insn_pa = Int64.add pa (Int64.of_int (4 * !n)) in
    let word = Machine.phys_read e.machine ~bits:32 insn_pa in
    (match Ssa.Offline.decode model word with
    | Some d ->
      decoded := d :: !decoded;
      incr n;
      if d.Adl.Decode.ends_block || !n >= e.config.max_block
         || Int64.logand insn_va 0xFFFL = 0xFFCL (* stop at page boundary *)
      then continue_ := false
    | None ->
      if !n = 0 then undefined_stub := true;
      continue_ := false)
  done;
  let decoded = List.rev !decoded in
  s.t_decode <- s.t_decode +. (now () -. t0);
  (* Phase 2: translation via generator functions over the invocation DAG. *)
  let t1 = now () in
  let dag_config =
    {
      Dag.bank_offset = e.guest.Ops.bank_offset;
      slot_offset = e.guest.Ops.slot_offset;
      lower_intrinsic = lower_intrinsic e.config;
      effect_helper = Common.effect_helper_index;
      coproc_read_helper = Common.h_coproc_read;
      coproc_write_helper = Common.h_coproc_write;
      split_va_check = e.config.split_va_check && mmu_on;
      as_switch_helper = Common.h_as_switch;
    }
  in
  let dag = Dag.create dag_config in
  let em = Dag.emitter dag in
  if !undefined_stub then
    (* An undefined first instruction gets a cached stub that raises the
       guest's undefined-instruction exception. *)
    em.Ssa.Emitter.effect "take_exception" [ em.Ssa.Emitter.const 0L; em.Ssa.Emitter.const 0L ]
  else
    List.iter
      (fun d ->
        let action = Ssa.Offline.action model d.Adl.Decode.name in
        let field = field_fn e sys d in
        let inc_pc = if d.Adl.Decode.ends_block then None else Some e.guest.Ops.insn_size in
        Ssa.Gen.translate em action ~field ~inc_pc)
      decoded;
  Dag.raw dag (Hir.Exit 0);
  let instrs = Dag.finish dag in
  s.t_translate <- s.t_translate +. (now () -. t1);
  (* Phase 3: register allocation. *)
  let t2 = now () in
  let ra = Regalloc.run instrs in
  s.t_regalloc <- s.t_regalloc +. (now () -. t2);
  (* Phase 4: encoding to host machine code + patching. *)
  let t3 = now () in
  let code = Encode.encode ra in
  let program = Encode.decode_program ~n_slots:ra.Regalloc.n_slots code in
  s.t_encode <- s.t_encode +. (now () -. t3);
  (* Charge JIT compilation time to the cycle model: Captive's pipeline
     makes several passes (DAG build, liveness, allocation, encode),
     costed per guest instruction and per emitted host instruction.  The
     resulting translation is ~2-3x more expensive than the QEMU-style
     engine's single direct pass (paper Sec. 3.4). *)
  let n_host = Array.length instrs in
  Machine.charge e.machine ((1400 * !n) + (260 * n_host));
  s.blocks_translated <- s.blocks_translated + 1;
  s.guest_instrs_translated <- s.guest_instrs_translated + !n;
  s.host_instrs_emitted <- s.host_instrs_emitted + n_host;
  s.host_bytes_emitted <- s.host_bytes_emitted + Bytes.length code;
  s.dead_marked <- s.dead_marked + ra.Regalloc.n_dead;
  s.spills <- s.spills + ra.Regalloc.n_spilled;
  let tr =
    {
      t_key = (pa, el, mmu_on);
      t_va = va;
      t_program = program;
      t_n_guest = !n;
      t_n_host = n_host;
      t_bytes = Bytes.length code;
      t_chain = None;
      t_exec_count = 0;
      t_cycles = 0;
    }
  in
  (* Register in the cache and write-protect the code's guest pages. *)
  Hashtbl.replace e.cache tr.t_key tr;
  (* Blocks never cross a page boundary (decode stops at it), so exactly
     one guest page holds this translation's code. *)
  let page = Bits.align_down pa 4096 in
  (match Hashtbl.find_opt e.by_page page with
  | Some l -> l := tr.t_key :: !l
  | None -> Hashtbl.replace e.by_page page (ref [ tr.t_key ]));
  protect_page e page;
  (match e.sanitizer with
  | Some sa ->
    Hvm.Sanitize.record_translation sa ~mem:e.machine.Machine.mem ~pa ~el ~mmu:mmu_on
      ~len:(4 * !n);
    if e.config.sanitize_every > 0 && s.blocks_translated mod e.config.sanitize_every = 0 then
      sanitize_check e ~reason:"periodic"
  | None -> ());
  tr

(* --- dispatch loop ------------------------------------------------------------------- *)

type exit_reason = Poweroff of int | Cycle_limit | Block_limit

let lookup_fetch (e : t) sys va ~el ~mmu_on =
  let va_page = Bits.align_down va 4096 in
  match Hashtbl.find_opt e.itlb (va_page, el, mmu_on) with
  | Some pa_page -> Ok (Int64.logor pa_page (Int64.logand va 0xFFFL))
  | None -> (
    match fetch_translate e sys va with
    | Error () -> Error ()
    | Ok pa ->
      Hashtbl.replace e.itlb (va_page, el, mmu_on) (Bits.align_down pa 4096);
      Ok pa)

(* Enter a block at [va] under exception level [el]: set the host ring
   (guest EL0 runs in host ring 3, everything else ring 0) and, when
   sanitizing, audit the ring/user-bit invariant.  Also called at chain
   transitions, where the exception level may have changed mid-chain. *)
let enter_block (e : t) ~el ~va =
  e.machine.Machine.ring <- (if el = 0 then 3 else 0);
  match e.sanitizer with
  | None -> ()
  | Some s ->
    let asid = if Int64.shift_right_logical va 47 = 0L then 0 else 1 in
    Hvm.Sanitize.audit_ring s ~machine:e.machine ~roots:e.roots ~asid ~guest_el:el ~pc:va

let prepare_as (e : t) va =
  (* Set the active page-table set to match the next PC's half. *)
  let target_as = if Int64.shift_right_logical va 47 = 0L then 0 else 1 in
  if target_as <> e.current_as then begin
    e.current_as <- target_as;
    Machine.set_page_table e.machine ~root:e.roots.(target_as) ~pcid:target_as
      ~keep_tlb:e.config.pcid
  end;
  trace "PREPARE va=%Lx as=%d\n%!" va target_as;
  e.ctx.Exec.regs.(Dag.as_tag_preg) <- as_tag_value target_as

let run ?(max_cycles = max_int) ?(max_blocks = max_int) (e : t) : exit_reason =
  let sys = Common.sys_ctx e.guest e.ctx in
  let result = ref None in
  (try
     while !result = None do
       if e.syscon.Hvm.Device.Syscon.poweroff then
         result := Some (Poweroff e.syscon.Hvm.Device.Syscon.exit_code)
       else if e.machine.Machine.cycles > max_cycles then result := Some Cycle_limit
       else if e.stats.blocks_executed > max_blocks then result := Some Block_limit
       else begin
         (* Interrupts are taken at block boundaries. *)
         if Machine.irq_pending e.machine then ignore (e.guest.Ops.deliver_irq sys);
         let el = e.guest.Ops.privilege_level sys in
         let mmu_on = e.guest.Ops.mmu_enabled sys in
         let va = e.ctx.Exec.pc in
         enter_block e ~el ~va;
         Machine.charge e.machine Cost.dispatch_lookup;
         match lookup_fetch e sys va ~el ~mmu_on with
         | Error () -> () (* instruction abort redirected the PC *)
         | Ok pa -> (
           let key = (pa, el, mmu_on) in
           let tr =
             match Hashtbl.find_opt e.cache key with
             | Some tr -> tr
             | None -> translate_block e sys ~va ~pa ~el ~mmu_on
           in
           prepare_as e va;
           (* Execute, following chain links while they hit. *)
           try
             let cur = ref tr in
             let continue_chain = ref true in
             while !continue_chain do
               let c0 = e.machine.Machine.cycles in
               Machine.charge e.machine Cost.block_entry;
               ignore (Exec.run e.ctx !cur.t_program);
               !cur.t_exec_count <- !cur.t_exec_count + 1;
               !cur.t_cycles <- !cur.t_cycles + (e.machine.Machine.cycles - c0);
               e.stats.blocks_executed <- e.stats.blocks_executed + 1;
               let next_va = e.ctx.Exec.pc in
               let next_el = e.guest.Ops.privilege_level sys in
               if
                 e.config.chaining
                 && (not (Machine.irq_pending e.machine))
                 && e.stats.blocks_executed <= max_blocks
                 && e.machine.Machine.cycles <= max_cycles
               then begin
                 match !cur.t_chain with
                 | Some (cva, cel, target) when cva = next_va && cel = next_el ->
                   Machine.charge e.machine Cost.branch;
                   e.stats.chain_hits <- e.stats.chain_hits + 1;
                   enter_block e ~el:next_el ~va:next_va;
                   cur := target
                 | _ -> (
                   (* Try to link: only when the target is already
                      translated and the MMU regime is unchanged. *)
                   let mmu_on' = e.guest.Ops.mmu_enabled sys in
                   if mmu_on' = mmu_on && Int64.shift_right_logical next_va 47 = Int64.shift_right_logical va 47 then begin
                     match Hashtbl.find_opt e.itlb (Bits.align_down next_va 4096, next_el, mmu_on') with
                     | Some pa_page -> (
                       let npa = Int64.logor pa_page (Int64.logand next_va 0xFFFL) in
                       match Hashtbl.find_opt e.cache (npa, next_el, mmu_on') with
                       | Some target ->
                         !cur.t_chain <- Some (next_va, next_el, target);
                         Machine.charge e.machine Cost.dispatch_lookup;
                         enter_block e ~el:next_el ~va:next_va;
                         cur := target
                       | None -> continue_chain := false)
                     | None -> continue_chain := false
                   end
                   else continue_chain := false)
               end
               else continue_chain := false
             done
           with Ops.Guest_trap -> () (* guest exception taken mid-block *))
       end
     done
   with Machine.Powered_off code -> result := Some (Poweroff code));
  Option.get !result

(* --- guest setup utilities -------------------------------------------------------------- *)

let sys (e : t) = Common.sys_ctx e.guest e.ctx

let load_image (e : t) ~addr (image : bytes) = Hvm.Mem.blit_in e.machine.Machine.mem ~addr image

let set_entry (e : t) entry = e.guest.Ops.reset (sys e) ~entry

let uart_output (e : t) = Hvm.Device.Uart.output e.uart
let cycles (e : t) = e.machine.Machine.cycles

(* Per-translation execution statistics, for the Fig. 21 code-quality
   analysis: (translation VA, guest instrs, host instrs, executions,
   accumulated cycles). *)
let block_stats (e : t) =
  Hashtbl.fold
    (fun _ tr acc -> (tr.t_va, tr.t_n_guest, tr.t_n_host, tr.t_exec_count, tr.t_cycles) :: acc)
    e.cache []
