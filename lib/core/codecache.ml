(* PA-sharded, published-immutable code cache (the concurrent-JIT
   successor to the engine's single-owner Hashtbl).

   The cache is split into N shards by guest-physical page.  Each shard
   is one [Atomic.t] holding an immutable state record (persistent maps
   for the key index, the page index, and per-page invalidation
   generations).  Readers take a snapshot with a single [Atomic.get] and
   never lock; writers build the successor state functionally and swap
   it in with a CAS loop.  Cross-shard operations (iteration, key
   snapshots) read each shard's snapshot independently — they see a
   per-shard-consistent view, which is exactly the coherence the engine
   needs: a translation is either fully published or absent, never
   half-installed.

   SMC tombstoning rides on the per-page generation: every
   [invalidate_page] bumps the page's generation (whether or not any
   translation was registered), and a publisher holding a generation
   token from job-enqueue time uses [publish_if] — the install is
   refused if the page was invalidated in between, so a translation of
   pre-SMC guest bytes is never served. *)

type key = int64 * int * bool (* (guest PA, exception level, mmu on) *)

module Kmap = Map.Make (struct
  type t = key

  let compare = compare
end)

module Pmap = Map.Make (Int64)

type 'a state = {
  map : 'a Kmap.t; (* key -> published translation *)
  pages : key list Pmap.t; (* phys page -> keys whose code lives on it *)
  gens : int Pmap.t; (* phys page -> invalidation generation *)
}

type 'a t = { shards : 'a state Atomic.t array; mask : int }

let empty_state = { map = Kmap.empty; pages = Pmap.empty; gens = Pmap.empty }

let page_of_pa pa = Int64.logand pa (Int64.lognot 0xFFFL)
let page_of_key (pa, _, _) = page_of_pa pa

let create ?(shards = 16) () : 'a t =
  let n = max 1 shards in
  (* round up to a power of two so the shard index is a mask *)
  let rec pow2 p = if p >= n then p else pow2 (p * 2) in
  let n = pow2 1 in
  { shards = Array.init n (fun _ -> Atomic.make empty_state); mask = n - 1 }

let n_shards t = Array.length t.shards

let shard_of t page =
  t.shards.(Int64.to_int (Int64.shift_right_logical page 12) land t.mask)

(* CAS loop: apply [f] to the current state until the swap wins; returns
   [f]'s auxiliary result from the winning iteration. *)
let rec update (shard : 'a state Atomic.t) (f : 'a state -> 'a state * 'b) : 'b =
  let old = Atomic.get shard in
  let next, r = f old in
  if Atomic.compare_and_set shard old next then r else update shard f

let lookup t key = Kmap.find_opt key (Atomic.get (shard_of t (page_of_key key))).map

let gen_of st page = Option.value ~default:0 (Pmap.find_opt page st.gens)
let page_gen t page = gen_of (Atomic.get (shard_of t page)) page

let add_key st key v =
  let page = page_of_key key in
  let pages =
    if Kmap.mem key st.map then st.pages (* replacement: key already indexed *)
    else
      Pmap.update page
        (function Some l -> Some (key :: l) | None -> Some [ key ])
        st.pages
  in
  { st with map = Kmap.add key v st.map; pages }

let publish t key v = update (shard_of t (page_of_key key)) (fun st -> (add_key st key v, ()))

(* Conditional publish: the caller holds a generation token for the
   code's page from when the translation job was enqueued; if the page
   was invalidated since (SMC), the install is refused and the stale
   code is dropped on the floor. *)
let publish_if t key ~gen v =
  update
    (shard_of t (page_of_key key))
    (fun st ->
      if gen_of st (page_of_key key) <> gen then (st, false) else (add_key st key v, true))

(* Remove every translation on [page] and bump the page's generation —
   unconditionally, so in-flight jobs for the page are tombstoned even
   when nothing was published yet.  Returns the removed entries so the
   engine can unlink chain edges into them. *)
let invalidate_page t page : 'a list =
  update (shard_of t page) (fun st ->
      let keys = Option.value ~default:[] (Pmap.find_opt page st.pages) in
      let removed = List.filter_map (fun k -> Kmap.find_opt k st.map) keys in
      let map = List.fold_left (fun m k -> Kmap.remove k m) st.map keys in
      let gens = Pmap.update page (fun g -> Some (1 + Option.value ~default:0 g)) st.gens in
      ({ map; pages = Pmap.remove page st.pages; gens }, removed))

let page_keys t page =
  Option.value ~default:[] (Pmap.find_opt page (Atomic.get (shard_of t page)).pages)

let iter f t = Array.iter (fun sh -> Kmap.iter f (Atomic.get sh).map) t.shards

let fold f t init =
  Array.fold_left (fun acc sh -> Kmap.fold f (Atomic.get sh).map acc) init t.shards

let keys t = fold (fun k _ acc -> k :: acc) t [] |> List.rev
let length t = fold (fun _ _ n -> n + 1) t 0
