(** Glue shared by the DBT engines: the guest [sys_ctx] over executor
    state, and the helper tables generated code calls into.  Helper
    indices and their effect classification are owned by
    {!Hostir.Effects} and re-exported here. *)

val sys_ctx : Guest.Ops.ops -> Hostir.Exec.ctx -> Guest.Ops.sys_ctx
val access_of : Hvm.Machine.access -> Guest.Ops.access

(** {1 Fixed helper indices} *)

val h_coproc_read : int
val h_coproc_write : int
val h_take_exception : int
val h_eret : int
val h_tlb_flush : int
val h_tlb_flush_page : int
val h_halt : int
val h_wfi : int
val h_barrier : int
val h_as_switch : int
val h_softmmu_fill_read : int
val h_softmmu_fill_write : int
val first_softfloat : int

val effect_helper_index : string -> int
(** Helper index for a named ADL effect; raises [Invalid_argument] for
    effects without a helper. *)

val softfloat_names : string list
val softfloat_index : string -> int option

val softfloat_helper : string -> Hostir.Exec.helper
(** Softfloat helper evaluating the intrinsic through the ADL evaluator,
    bit-identical to translation-time folding. *)

val nargs_of_intrinsic : string -> int

val helper_kind : int -> Hostir.Symexec.helper_kind
(** Effect classification by helper index (see {!Hostir.Effects}). *)
