(** Disk-backed AOT translation cache: persists translations certified
    relocation-clean by {!Hostir.Reloc} and reinstalls them on later
    boots with only the numbered chain/exit sites re-bound.

    Entries are keyed by the certificate tuple — guest content (verified
    byte-for-byte at lookup), MMU regime, optimisation-config signature.
    Nothing from disk is installed without the stored hash re-checking
    and a full re-run of [Reloc.certify]; corrupted or flagged entries
    are rejected, never executed. *)

type entry = {
  e_kind : int;  (** 0 = tier-0 block, 1 = region unit, 2 = template-stitched block *)
  e_va : int64;  (** head VA the code was translated from *)
  e_pa : int64;  (** head PA *)
  e_el : int;
  e_mmu : bool;
  e_cfg : int64;  (** optimisation-config signature *)
  e_members : (int64 * int) array;  (** (member va, guest code bytes) *)
  e_guest : bytes;  (** member guest bytes, concatenated *)
  e_n_slots : int;
  e_n_exits : int;  (** numbered chain/exit sites to re-bind on install *)
  e_n_guest : int;
  e_n_host : int;
  e_code : bytes;  (** the certified encoded translation *)
  e_hash : int64;  (** [Reloc.hash64] of [e_code] *)
}

type stats = { mutable loaded : int; mutable malformed : int }

(** The open cache: a disk directory plus an in-memory index.  All
    operations are thread-safe — the index and the store path are
    serialized by an internal mutex, so JIT worker domains may load
    candidates and persist entries concurrently with the vCPU. *)
type t

val stats : t -> stats

exception Malformed of string

val open_dir : string -> t
(** Open (creating if needed) a cache directory and load every [.aot]
    entry; unreadable files are counted in [stats.malformed], skipped. *)

val candidates :
  t -> kind:int -> va:int64 -> pa:int64 -> el:int -> mmu:bool -> cfg:int64 -> entry list
(** Entries matching a translation site; the caller still verifies guest
    bytes and re-certifies before installing any of them. *)

val store : t -> entry -> unit
(** Persist a certified entry (atomic tmp + rename; content-addressed
    name, so storing the same entry twice is a no-op). *)

val entry_count : t -> int

val read_entry : bytes -> entry
(** Parse one serialized entry; raises {!Malformed}. *)

val write_entry : Buffer.t -> entry -> unit
val filename_of : entry -> string
