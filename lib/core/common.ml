(* Glue shared by the DBT engines: building the guest sys_ctx over the
   executor state, and the helper tables that generated code calls into. *)

module Exec = Hostir.Exec
module Machine = Hvm.Machine
module Ops = Guest.Ops

let sys_ctx (guest : Ops.ops) (ctx : Exec.ctx) : Ops.sys_ctx =
  {
    Ops.read_reg = (fun slot -> Exec.rf_read ctx (guest.Ops.slot_offset slot));
    write_reg = (fun slot v -> Exec.rf_write ctx (guest.Ops.slot_offset slot) v);
    read_bank = (fun bank i -> Exec.rf_read ctx (guest.Ops.bank_offset ~bank ~index:i));
    write_bank = (fun bank i v -> Exec.rf_write ctx (guest.Ops.bank_offset ~bank ~index:i) v);
    get_pc = (fun () -> ctx.Exec.pc);
    set_pc = (fun v -> ctx.Exec.pc <- v);
    phys_read = (fun ~bits pa -> Machine.phys_read ctx.Exec.machine ~bits pa);
    cycles = (fun () -> ctx.Exec.machine.Machine.cycles);
  }

let access_of : Machine.access -> Ops.access = function
  | Machine.Read -> Ops.Aload
  | Machine.Write -> Ops.Astore
  | Machine.Exec -> Ops.Afetch

(* Fixed helper indices shared by both engines; engine-specific helpers
   (address-space switching, softmmu fills) use indices >= [first_free].
   The layout is owned by Hostir.Effects so the analyzer, the symbolic
   validator, and the engines all read one table; re-exported here for
   the existing call sites. *)
let h_coproc_read = Hostir.Effects.h_coproc_read
let h_coproc_write = Hostir.Effects.h_coproc_write
let h_take_exception = Hostir.Effects.h_take_exception
let h_eret = Hostir.Effects.h_eret
let h_tlb_flush = Hostir.Effects.h_tlb_flush
let h_tlb_flush_page = Hostir.Effects.h_tlb_flush_page
let h_halt = Hostir.Effects.h_halt
let h_wfi = Hostir.Effects.h_wfi
let h_barrier = Hostir.Effects.h_barrier
let h_as_switch = Hostir.Effects.h_as_switch
let h_softmmu_fill_read = Hostir.Effects.h_softmmu_fill_read
let h_softmmu_fill_write = Hostir.Effects.h_softmmu_fill_write
let first_softfloat = Hostir.Effects.first_softfloat

let effect_helper_index = function
  | "take_exception" -> h_take_exception
  | "eret" -> h_eret
  | "tlb_flush" -> h_tlb_flush
  | "tlb_flush_page" -> h_tlb_flush_page
  | "halt" -> h_halt
  | "wfi" -> h_wfi
  | "barrier" -> h_barrier
  | other -> invalid_arg ("no helper for effect " ^ other)

(* Softfloat helper table: every FP intrinsic evaluated through the shared
   softfloat implementation (QEMU-style FP, and Captive's Sec. 3.6.2
   ablation). *)
let softfloat_names =
  [
    "fp64_add"; "fp64_sub"; "fp64_mul"; "fp64_div"; "fp64_sqrt"; "fp64_min"; "fp64_max";
    "fp32_add"; "fp32_sub"; "fp32_mul"; "fp32_div"; "fp32_sqrt"; "fp32_min"; "fp32_max";
    "fp64_cmp_flags"; "fp32_cmp_flags"; "fp32_to_fp64"; "fp64_to_fp32"; "fp64_to_sint64";
    "fp64_to_uint64"; "fp32_to_sint32"; "sint64_to_fp64"; "uint64_to_fp64"; "sint32_to_fp32";
    "sint64_to_fp32"; "fp64_muladd";
  ]

let softfloat_index name =
  let rec go i = function
    | [] -> None
    | n :: rest -> if n = name then Some (first_softfloat + i) else go (i + 1) rest
  in
  go 0 softfloat_names

(* A softfloat helper evaluates the intrinsic via the ADL's own evaluator,
   so helper-based FP is bit-identical to translation-time folding.  The
   cost models QEMU's software FP routines (tens of cycles of integer
   work per operation, paper Sec. 2.5). *)
let softfloat_helper name : Exec.helper =
  {
    Exec.fn =
      (fun _ctx args ->
        match Adl.Eval.builtin name (Array.to_list args) with
        | Some v -> v
        | None -> invalid_arg ("softfloat helper " ^ name));
    cost = 55;
  }

let nargs_of_intrinsic name =
  match Adl.Builtins.find name with
  | Some sg -> List.length sg.Adl.Builtins.bi_params
  | None -> invalid_arg name

(* How each helper affects symbolic state, for the translation validator
   (Hostir.Symexec) and the static analyzer (Hostir.Absint); the shared
   classification lives in Hostir.Effects. *)
let helper_kind h : Hostir.Symexec.helper_kind = Hostir.Effects.classify h
