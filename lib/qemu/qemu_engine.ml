(* The QEMU-style baseline engine.

   Contrasts with Captive exactly along the axes the paper evaluates:
   - runs as a "user process": no host paging, no rings - guest memory is
     reached through an inline softmmu TLB over a flat mapping;
   - code cache indexed by guest *virtual* address; guest TLB flushes and
     MMU reconfiguration invalidate every translation (Sec. 2.6);
   - all floating point through softfloat helper calls;
   - cheaper, single-pass translation (Sec. 3.4). *)

module Exec = Hostir.Exec
module Encode = Hostir.Encode
module Regalloc = Hostir.Regalloc
module Hir = Hostir.Hir
module Machine = Hvm.Machine
module Cost = Hvm.Cost
module Ops = Guest.Ops
module Common = Captive.Common
module Bits = Dbt_util.Bits

type config = {
  mem_size : int;
  chaining : bool;
  max_block : int;
}

let default_config = { mem_size = 256 * 1024 * 1024; chaining = true; max_block = 64 }

let tlb_entries = 256
let tlb_bytes = tlb_entries * 32

type translation = {
  t_key : int64 * int * bool; (* va, el, mmu_on *)
  t_program : Encode.program;
  t_n_guest : int;
  t_n_host : int;
  t_bytes : int;
  mutable t_chain : (int64 * int * translation) option;
  mutable t_exec_count : int;
  mutable t_cycles : int;
}

type stats = {
  mutable t_decode : float;
  mutable t_translate : float;
  mutable t_regalloc : float;
  mutable t_encode : float;
  mutable blocks_translated : int;
  mutable guest_instrs_translated : int;
  mutable host_instrs_emitted : int;
  mutable host_bytes_emitted : int;
  mutable blocks_executed : int;
  mutable full_flushes : int;
}

type t = {
  guest : Ops.ops;
  config : config;
  machine : Machine.t;
  mutable ctx : Exec.ctx;
  cache : (int64 * int * bool, translation) Hashtbl.t;
  code_pages : (int64, (int64 * int * bool) list ref) Hashtbl.t; (* phys page -> keys *)
  itlb : (int64 * int, int64) Hashtbl.t;
  softtlb_base : int64; (* runtime area inside flat memory *)
  stats : stats;
  uart : Hvm.Device.Uart.state;
  timer : Hvm.Device.Timer.state;
  syscon : Hvm.Device.Syscon.state;
}

let now () = Unix.gettimeofday ()

let tlb_base_for e el = Int64.add e.softtlb_base (Int64.of_int (el * tlb_bytes))

(* Invalidate the whole soft TLB (fill tags with -1). *)
let soft_tlb_flush (e : t) =
  for el = 0 to 1 do
    let base = tlb_base_for e el in
    for i = 0 to tlb_entries - 1 do
      let ea = Int64.add base (Int64.of_int (32 * i)) in
      Hvm.Mem.write64 e.machine.Machine.mem ea (-1L);
      Hvm.Mem.write64 e.machine.Machine.mem (Int64.add ea 8L) (-1L)
    done
  done

(* QEMU-style global invalidation: guest page-table/TLB changes flush the
   soft TLB *and* every translation. *)
let flush_all (e : t) =
  soft_tlb_flush e;
  Hashtbl.reset e.cache;
  Hashtbl.reset e.code_pages;
  Hashtbl.reset e.itlb;
  Machine.charge e.machine 2000; (* retranslation storm is charged as it happens *)
  e.stats.full_flushes <- e.stats.full_flushes + 1

let invalidate_phys_page (e : t) phys_page =
  match Hashtbl.find_opt e.code_pages phys_page with
  | Some keys ->
    List.iter (fun k -> Hashtbl.remove e.cache k) !keys;
    Hashtbl.remove e.code_pages phys_page
  | None -> ()

(* Fill the soft TLB for [va]; returns the flat ("host") address.  Raises
   the guest data abort on translation/permission failure. *)
let softmmu_fill (e : t) ctx ~write va =
  (* tlb_fill: full software walk of the guest page tables plus
     tlb_set_page bookkeeping - an expensive path in real QEMU. *)
  Machine.charge e.machine 160;
  let sys = Common.sys_ctx e.guest ctx in
  let access = if write then Ops.Astore else Ops.Aload in
  match e.guest.Ops.mmu_translate sys ~access va with
  | Error fault ->
    e.guest.Ops.data_abort sys ~va ~access ~fault;
    raise Ops.Guest_trap
  | Ok (pa, perms) ->
    let el = e.guest.Ops.privilege_level sys in
    let allowed = (el > 0 || perms.Ops.puser) && ((not write) || perms.Ops.pw) in
    if not allowed then begin
      e.guest.Ops.data_abort sys ~va ~access ~fault:(Ops.Gf_permission 3);
      raise Ops.Guest_trap
    end;
    let phys_page = Bits.align_down pa 4096 in
    if write && Hashtbl.mem e.code_pages phys_page then invalidate_phys_page e phys_page;
    (* Install the entry. *)
    let va_page = Bits.align_down va 4096 in
    let idx = Int64.to_int (Int64.logand (Int64.shift_right_logical va 12) (Int64.of_int (tlb_entries - 1))) in
    let ea = Int64.add (tlb_base_for e el) (Int64.of_int (32 * idx)) in
    let addend = Int64.sub phys_page va_page in
    if not write then Hvm.Mem.write64 e.machine.Machine.mem ea va_page
    else begin
      if perms.Ops.pw && not (Hashtbl.mem e.code_pages phys_page) then
        Hvm.Mem.write64 e.machine.Machine.mem (Int64.add ea 8L) va_page
    end;
    Hvm.Mem.write64 e.machine.Machine.mem (Int64.add ea 16L) addend;
    Int64.add va addend

let create ?(config = default_config) (guest : Ops.ops) : t =
  let intc = Hvm.Device.Intc.create () in
  let uart = Hvm.Device.Uart.create () in
  let timer = Hvm.Device.Timer.create intc in
  let syscon = Hvm.Device.Syscon.create () in
  let devices =
    [
      Hvm.Device.Intc.device intc;
      Hvm.Device.Uart.device uart;
      Hvm.Device.Timer.device timer;
      Hvm.Device.Syscon.device syscon;
    ]
  in
  let machine = Machine.create ~mem_size:config.mem_size ~devices ~intc () in
  machine.Machine.paging <- false;
  (* QEMU runtime structures live above guest RAM, below the (unused)
     page-table area. *)
  let softtlb_base = Int64.of_int (config.mem_size - (48 * 1024 * 1024)) in
  let engine_ref = ref None in
  let engine () = Option.get !engine_ref in
  let sys ctx = Common.sys_ctx guest ctx in
  let helpers =
    Array.make (Common.first_softfloat + List.length Common.softfloat_names)
      { Exec.fn = (fun _ _ -> 0L); cost = 0 }
  in
  helpers.(Common.h_coproc_read) <-
    { Exec.fn = (fun ctx args -> guest.Ops.coproc_read (sys ctx) args.(0)); cost = 15 };
  helpers.(Common.h_coproc_write) <-
    {
      Exec.fn =
        (fun ctx args ->
          (match guest.Ops.coproc_write (sys ctx) args.(0) args.(1) with
          | Ops.Ce_none -> ()
          | Ops.Ce_mmu_changed | Ops.Ce_tlb_flush -> flush_all (engine ()));
          0L);
      cost = 15;
    };
  (* Guest exceptions in a user-mode DBT: full state synchronization plus
     a longjmp out of the translated code. *)
  helpers.(Common.h_take_exception) <-
    {
      Exec.fn =
        (fun ctx args ->
          guest.Ops.take_exception (sys ctx) ~ec:args.(0) ~iss:args.(1);
          0L);
      cost = 450;
    };
  helpers.(Common.h_eret) <-
    {
      Exec.fn =
        (fun ctx _ ->
          guest.Ops.eret (sys ctx);
          0L);
      cost = 300;
    };
  helpers.(Common.h_tlb_flush) <-
    { Exec.fn = (fun _ _ -> flush_all (engine ()); 0L); cost = 40 };
  helpers.(Common.h_tlb_flush_page) <-
    { Exec.fn = (fun _ _ -> flush_all (engine ()); 0L); cost = 40 };
  helpers.(Common.h_halt) <- { Exec.fn = (fun _ _ -> raise (Machine.Powered_off 0)); cost = 0 };
  helpers.(Common.h_wfi) <-
    {
      Exec.fn =
        (fun ctx _ ->
          let e = engine () in
          let t = e.timer in
          if t.Hvm.Device.Timer.enabled && t.Hvm.Device.Timer.irq_enabled then
            Machine.charge ctx.Exec.machine (t.Hvm.Device.Timer.value + 1)
          else Machine.charge ctx.Exec.machine 1000;
          0L);
      cost = 10;
    };
  helpers.(Common.h_barrier) <- { Exec.fn = (fun _ _ -> 0L); cost = 0 };
  helpers.(Common.h_softmmu_fill_read) <-
    { Exec.fn = (fun ctx args -> softmmu_fill (engine ()) ctx ~write:false args.(0)); cost = 12 };
  helpers.(Common.h_softmmu_fill_write) <-
    { Exec.fn = (fun ctx args -> softmmu_fill (engine ()) ctx ~write:true args.(0)); cost = 12 };
  List.iteri
    (fun i name -> helpers.(Common.first_softfloat + i) <- Common.softfloat_helper name)
    Common.softfloat_names;
  let fault_handler _ctx _access va ~bits:_ ~value:_ =
    invalid_arg (Printf.sprintf "qemu engine: unexpected host fault at %Lx" va)
  in
  let ctx = Exec.create ~machine ~helpers ~fault_handler in
  let e =
    {
      guest;
      config;
      machine;
      ctx;
      cache = Hashtbl.create 1024;
      code_pages = Hashtbl.create 256;
      itlb = Hashtbl.create 256;
      softtlb_base;
      stats =
        {
          t_decode = 0.;
          t_translate = 0.;
          t_regalloc = 0.;
          t_encode = 0.;
          blocks_translated = 0;
          guest_instrs_translated = 0;
          host_instrs_emitted = 0;
          host_bytes_emitted = 0;
          blocks_executed = 0;
          full_flushes = 0;
        };
      uart;
      timer;
      syscon;
    }
  in
  engine_ref := Some e;
  soft_tlb_flush e;
  guest.Ops.reset (sys ctx) ~entry:0L;
  e

(* --- translation ----------------------------------------------------------------- *)

let field_fn (e : t) sys (d : Adl.Decode.decoded) =
  let el = Int64.of_int (e.guest.Ops.privilege_level sys) in
  fun name ->
    if name = "__el" then el
    else
      match List.assoc_opt name d.Adl.Decode.field_values with
      | Some v -> v
      | None -> invalid_arg ("no field " ^ name)

let translate_block (e : t) sys ~va ~pa ~el ~mmu_on : translation =
  let s = e.stats in
  let model = e.guest.Ops.model in
  let t0 = now () in
  let decoded = ref [] in
  let n = ref 0 in
  let undefined_stub = ref false in
  let continue_ = ref true in
  while !continue_ do
    let insn_va = Int64.add va (Int64.of_int (4 * !n)) in
    let insn_pa = Int64.add pa (Int64.of_int (4 * !n)) in
    let word = Machine.phys_read e.machine ~bits:32 insn_pa in
    match Ssa.Offline.decode model word with
    | Some d ->
      decoded := d :: !decoded;
      incr n;
      if d.Adl.Decode.ends_block || !n >= e.config.max_block || Int64.logand insn_va 0xFFFL = 0xFFCL
      then continue_ := false
    | None ->
      if !n = 0 then undefined_stub := true;
      continue_ := false
  done;
  let decoded = List.rev !decoded in
  s.t_decode <- s.t_decode +. (now () -. t0);
  let t1 = now () in
  let emit_config =
    {
      Qemu_emit.bank_offset = e.guest.Ops.bank_offset;
      slot_offset = e.guest.Ops.slot_offset;
      effect_helper = Common.effect_helper_index;
      coproc_read_helper = Common.h_coproc_read;
      coproc_write_helper = Common.h_coproc_write;
      softfloat_helper = Common.softfloat_index;
      (* System-mode QEMU always probes its soft TLB, even with the guest
         MMU off (the fill helper then installs identity mappings). *)
      softmmu =
        Some
          {
            Qemu_emit.tlb_base = tlb_base_for e el;
            tlb_entries;
            fill_read = Common.h_softmmu_fill_read;
            fill_write = Common.h_softmmu_fill_write;
          };
    }
  in
  let qe = Qemu_emit.create emit_config in
  let em = Qemu_emit.emitter qe in
  if !undefined_stub then
    em.Ssa.Emitter.effect "take_exception" [ em.Ssa.Emitter.const 0L; em.Ssa.Emitter.const 0L ]
  else
    List.iter
      (fun d ->
        let action = Ssa.Offline.action model d.Adl.Decode.name in
        let field = field_fn e sys d in
        let inc_pc = if d.Adl.Decode.ends_block then None else Some e.guest.Ops.insn_size in
        Ssa.Gen.translate em action ~field ~inc_pc)
      decoded;
  Qemu_emit.raw qe (Hir.Exit 0);
  let instrs = Qemu_emit.finish qe in
  s.t_translate <- s.t_translate +. (now () -. t1);
  let t2 = now () in
  let ra = Regalloc.run instrs in
  s.t_regalloc <- s.t_regalloc +. (now () -. t2);
  let t3 = now () in
  let code = Encode.encode ra in
  let program = Encode.decode_program ~n_slots:ra.Regalloc.n_slots code in
  s.t_encode <- s.t_encode +. (now () -. t3);
  (* Single-pass TCG-style translation cost (Sec. 3.4: Captive is ~2.6x
     slower to translate than QEMU). *)
  let n_host = Array.length instrs in
  (* Translation-side charge (Machine's virtual-time split): counted in
     wall-clock cycles but excluded from guest-visible device time. *)
  Machine.charge_jit e.machine ((550 * !n) + (90 * n_host));
  s.blocks_translated <- s.blocks_translated + 1;
  s.guest_instrs_translated <- s.guest_instrs_translated + !n;
  s.host_instrs_emitted <- s.host_instrs_emitted + n_host;
  s.host_bytes_emitted <- s.host_bytes_emitted + Bytes.length code;
  let tr =
    {
      t_key = (va, el, mmu_on);
      t_program = program;
      t_n_guest = !n;
      t_n_host = n_host;
      t_bytes = Bytes.length code;
      t_chain = None;
      t_exec_count = 0;
      t_cycles = 0;
    }
  in
  Hashtbl.replace e.cache tr.t_key tr;
  let page = Bits.align_down pa 4096 in
  (match Hashtbl.find_opt e.code_pages page with
  | Some l -> l := tr.t_key :: !l
  | None -> Hashtbl.replace e.code_pages page (ref [ tr.t_key ]));
  tr

(* --- dispatch -------------------------------------------------------------------- *)

type exit_reason = Poweroff of int | Cycle_limit | Block_limit

let fetch (e : t) sys va ~el =
  match Hashtbl.find_opt e.itlb (Bits.align_down va 4096, el) with
  | Some pa_page -> Ok (Int64.logor pa_page (Int64.logand va 0xFFFL))
  | None -> (
    match e.guest.Ops.mmu_translate sys ~access:Ops.Afetch va with
    | Error fault ->
      e.guest.Ops.insn_abort sys ~va ~fault;
      Error ()
    | Ok (pa, perms) ->
      if (el = 0 && not perms.Ops.puser) || not perms.Ops.px then begin
        e.guest.Ops.insn_abort sys ~va ~fault:(Ops.Gf_permission 3);
        Error ()
      end
      else begin
        Hashtbl.replace e.itlb (Bits.align_down va 4096, el) (Bits.align_down pa 4096);
        Ok pa
      end)

let run ?(max_cycles = max_int) ?(max_blocks = max_int) (e : t) : exit_reason =
  let sys = Common.sys_ctx e.guest e.ctx in
  let result = ref None in
  (try
     while !result = None do
       if e.syscon.Hvm.Device.Syscon.poweroff then
         result := Some (Poweroff e.syscon.Hvm.Device.Syscon.exit_code)
       else if e.machine.Machine.cycles > max_cycles then result := Some Cycle_limit
       else if e.stats.blocks_executed > max_blocks then result := Some Block_limit
       else begin
         if Machine.irq_pending e.machine then ignore (e.guest.Ops.deliver_irq sys);
         let el = e.guest.Ops.privilege_level sys in
         let mmu_on = e.guest.Ops.mmu_enabled sys in
         let va = e.ctx.Exec.pc in
         Machine.charge e.machine Cost.dispatch_lookup;
         match fetch e sys va ~el with
         | Error () -> ()
         | Ok pa -> (
           let key = (va, el, mmu_on) in
           let tr =
             match Hashtbl.find_opt e.cache key with
             | Some tr -> tr
             | None -> translate_block e sys ~va ~pa ~el ~mmu_on
           in
           try
             let cur = ref tr in
             let continue_chain = ref true in
             while !continue_chain do
               let c0 = e.machine.Machine.cycles in
               Machine.charge e.machine Cost.block_entry;
               ignore (Exec.run e.ctx !cur.t_program);
               !cur.t_exec_count <- !cur.t_exec_count + 1;
               !cur.t_cycles <- !cur.t_cycles + (e.machine.Machine.cycles - c0);
               e.stats.blocks_executed <- e.stats.blocks_executed + 1;
               let next_va = e.ctx.Exec.pc in
               let next_el = e.guest.Ops.privilege_level sys in
               if
                 e.config.chaining
                 && (not (Machine.irq_pending e.machine))
                 && e.stats.blocks_executed <= max_blocks
                 && e.machine.Machine.cycles <= max_cycles
               then begin
                 match !cur.t_chain with
                 | Some (cva, cel, target) when cva = next_va && cel = next_el ->
                   Machine.charge e.machine Cost.branch;
                   cur := target
                 | _ -> (
                   let mmu_on' = e.guest.Ops.mmu_enabled sys in
                   match Hashtbl.find_opt e.cache (next_va, next_el, mmu_on') with
                   | Some target when mmu_on' = mmu_on ->
                     !cur.t_chain <- Some (next_va, next_el, target);
                     Machine.charge e.machine Cost.dispatch_lookup;
                     cur := target
                   | _ -> continue_chain := false)
               end
               else continue_chain := false
             done
           with Ops.Guest_trap -> ())
       end
     done
   with Machine.Powered_off code -> result := Some (Poweroff code));
  Option.get !result

let sys (e : t) = Common.sys_ctx e.guest e.ctx
let load_image (e : t) ~addr image = Hvm.Mem.blit_in e.machine.Machine.mem ~addr image
let set_entry (e : t) entry = e.guest.Ops.reset (sys e) ~entry
let uart_output (e : t) = Hvm.Device.Uart.output e.uart
let cycles (e : t) = e.machine.Machine.cycles

(* Same tuple shape as Captive.Engine.block_stats; the QEMU-style engine
   has no tiering, so every translation reports tier 0. *)
let block_stats (e : t) =
  Hashtbl.fold
    (fun (va, _, _) tr acc -> (va, tr.t_n_guest, tr.t_n_host, tr.t_exec_count, tr.t_cycles, 0) :: acc)
    e.cache []
