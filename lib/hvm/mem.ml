(* Physical memory of the host virtual machine.

   Little-endian, byte addressable.  Out-of-range accesses raise
   [Bus_error], which the machine surfaces like a hardware machine-check.
   The exception carries the access width and direction so that memory
   diagnostics (e.g. `captive_run mmucheck` findings) are actionable. *)

exception Bus_error of { addr : int64; bits : int; write : bool }

let () =
  Printexc.register_printer (function
    | Bus_error { addr; bits; write } ->
      Some
        (Printf.sprintf "Mem.Bus_error(%s of %d bits at 0x%Lx)"
           (if write then "write" else "read")
           bits addr)
    | _ -> None)

type t = {
  bytes : Bytes.t;
  size : int;
}

let create size = { bytes = Bytes.make size '\000'; size }

let check t addr len ~write =
  let a = Int64.to_int addr in
  if addr < 0L || Int64.compare addr (Int64.of_int t.size) >= 0 || a + len > t.size then
    raise (Bus_error { addr; bits = 8 * len; write });
  a

let read8 t addr = Int64.of_int (Char.code (Bytes.get t.bytes (check t addr 1 ~write:false)))
let write8 t addr v =
  Bytes.set t.bytes (check t addr 1 ~write:true) (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))

let read16 t addr =
  let a = check t addr 2 ~write:false in
  Int64.of_int (Bytes.get_uint16_le t.bytes a)

let write16 t addr v =
  let a = check t addr 2 ~write:true in
  Bytes.set_uint16_le t.bytes a (Int64.to_int (Int64.logand v 0xFFFFL))

let read32 t addr =
  let a = check t addr 4 ~write:false in
  Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.bytes a)) 0xFFFFFFFFL

let write32 t addr v =
  let a = check t addr 4 ~write:true in
  Bytes.set_int32_le t.bytes a (Int64.to_int32 v)

let read64 t addr =
  let a = check t addr 8 ~write:false in
  Bytes.get_int64_le t.bytes a

let write64 t addr v =
  let a = check t addr 8 ~write:true in
  Bytes.set_int64_le t.bytes a v

let read t ~bits addr =
  match bits with
  | 8 -> read8 t addr
  | 16 -> read16 t addr
  | 32 -> read32 t addr
  | 64 -> read64 t addr
  | _ -> invalid_arg "Mem.read: bad width"

let write t ~bits addr v =
  match bits with
  | 8 -> write8 t addr v
  | 16 -> write16 t addr v
  | 32 -> write32 t addr v
  | 64 -> write64 t addr v
  | _ -> invalid_arg "Mem.write: bad width"

(* Bulk load (e.g. kernel images). *)
let blit_in t ~addr (src : Bytes.t) =
  let a = check t addr (Bytes.length src) ~write:true in
  Bytes.blit src 0 t.bytes a (Bytes.length src)

let zero_range t ~addr ~len =
  let a = check t addr len ~write:true in
  Bytes.fill t.bytes a len '\000'
