(** Model of the host CPU's hardware TLB, with PCID tags.

    Direct-mapped by virtual page number.  Entries carry the PCID they
    were filled under; lookups hit only entries of the current PCID (or
    global ones), so switching page-table sets under PCIDs (paper
    Sec. 2.7.5) keeps both address spaces resident. *)

type entry = {
  mutable valid : bool;
  mutable vpn : int64;
  mutable pcid : int;
  mutable frame : int64;
  mutable writable : bool;
  mutable user : bool;
  mutable executable : bool;
  mutable global : bool;
}

type t = {
  entries : entry array;
  size : int;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

val create : ?size:int -> unit -> t

(** Lookup; counts a hit or miss. *)
val lookup : t -> pcid:int -> int64 -> entry option

val insert : t -> pcid:int -> vpn:int64 -> frame:int64 -> flags:Pagetable.flags -> global:bool -> unit

val flush_all : t -> unit

(** Flush one PCID's non-global entries (a plain CR3 write). *)
val flush_pcid : t -> int -> unit

(** Invalidate any resident translation of one virtual page number —
    [invlpg] semantics: matches under {e every} PCID and also drops
    global entries.  (The TLB is direct-mapped, so the single slot for
    the VPN covers all PCIDs; aliasing entries for other VPNs in the
    same slot survive.) *)
val flush_page : t -> int64 -> unit
val reset_stats : t -> unit
