(* The host virtual machine: physical memory, the hardware-MMU model, the
   device bus, and the global cycle counter that all execution charges. *)

type access = Read | Write | Exec

exception Host_fault of { va : int64; access : access }

(* Raised when host execution must stop (guest powered off, etc.). *)
exception Powered_off of int

type t = {
  mem : Mem.t;
  tlb : Tlb.t;
  palloc : Palloc.t;
  devices : Device.t list;
  (* MMIO routing, fixed at creation: device [base, limit) ranges sorted by
     base for binary search, and the lowest MMIO base so the overwhelmingly
     common plain-RAM access skips the search entirely. *)
  dev_ranges : (int64 * int64 * Device.t) array;
  dev_floor : int64;
  intc : Device.Intc.state;
  mutable cr3 : int64; (* current page-table root *)
  mutable pcid : int;
  mutable ring : int; (* 0 = kernel, 3 = user *)
  mutable paging : bool; (* generated code uses the host MMU *)
  mutable cycles : int;
  mutable jit_cycles : int;
  (* translation-side cycles (JIT, AOT-cache loads): part of [cycles] for
     wall-clock totals, but excluded from guest-visible device time so the
     guest's observable execution is independent of how its code was
     produced (cold translation vs. warm AOT load). *)
  mutable async_jit_cycles : int;
  (* the share of [jit_cycles] charged for translations produced on
     worker domains (concurrent JIT): the work happened off the vCPU
     critical path, so this ledger is the translate-stall reduction a
     multi-domain run buys.  Always <= jit_cycles; 0 when --domains 1. *)
  (* statistics *)
  mutable mem_ops : int;
  mutable faults : int;
  mutable devs_ticked_at : int; (* in guest time (cycles - jit_cycles) *)
}

let charge t n = t.cycles <- t.cycles + n

(* Charge to the translation-side ledger: counted in wall-clock [cycles]
   but invisible to guest time (devices, timers). *)
let charge_jit t n =
  t.cycles <- t.cycles + n;
  t.jit_cycles <- t.jit_cycles + n

(* Charge translation work that a worker domain performed while the vCPU
   kept executing.  Deterministic virtual-time accounting: the charge is
   applied at install time on the vCPU, to exactly the same ledgers as a
   synchronous translation ([cycles] + [jit_cycles]), so guest-visible
   time ([guest_cycles], device ticks) is bit-identical regardless of
   how many domains produced the code — only the [async_jit_cycles]
   split records that the vCPU never stalled for it. *)
let charge_jit_async t n =
  charge_jit t n;
  t.async_jit_cycles <- t.async_jit_cycles + n

(* Guest-visible time: everything the guest's own execution charged. *)
let guest_cycles t = t.cycles - t.jit_cycles

(* Lazy device time: devices are advanced to the current guest cycle count
   when something might observe them (MMIO access, interrupt poll).  Guest
   time excludes JIT charges, so a timer interrupt lands at the same guest
   instruction whether the code was translated cold or loaded warm. *)
let sync_devices t =
  let now = guest_cycles t in
  let delta = now - t.devs_ticked_at in
  if delta > 0 then begin
    List.iter (fun d -> d.Device.tick delta) t.devices;
    t.devs_ticked_at <- now
  end

let create ?(mem_size = 256 * 1024 * 1024) ?(devices = []) ?(intc = Device.Intc.create ()) () =
  let mem = Mem.create mem_size in
  (* The top of physical memory (32 MiB, or a quarter for small machines)
     is reserved for hypervisor structures (page tables). *)
  let pt_reserve = min (32 * 1024 * 1024) (mem_size / 4) in
  let pt_base = Int64.of_int (mem_size - pt_reserve) in
  let dev_ranges =
    devices
    |> List.map (fun d ->
           (d.Device.base, Int64.add d.Device.base (Int64.of_int d.Device.size), d))
    |> List.sort (fun (a, _, _) (b, _, _) -> Int64.unsigned_compare a b)
    |> Array.of_list
  in
  let dev_floor =
    if Array.length dev_ranges = 0 then -1L
    else (fun (b, _, _) -> b) dev_ranges.(0)
  in
  {
    mem;
    tlb = Tlb.create ();
    palloc = Palloc.create mem ~base:pt_base ~limit:(Int64.of_int mem_size);
    devices;
    dev_ranges;
    dev_floor;
    intc;
    cr3 = 0L;
    pcid = 0;
    ring = 0;
    paging = false;
    cycles = 0;
    jit_cycles = 0;
    async_jit_cycles = 0;
    mem_ops = 0;
    faults = 0;
    devs_ticked_at = 0;
  }

(* RAM sits below the MMIO window, so nearly every access resolves with a
   single compare against [dev_floor]; the rare MMIO hit binary-searches the
   sorted range array for the greatest base <= pa. *)
let find_device t pa =
  if Int64.unsigned_compare pa t.dev_floor < 0 then None
  else begin
    let a = t.dev_ranges in
    let lo = ref 0 and hi = ref (Array.length a - 1) in
    let found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let base, limit, d = a.(mid) in
      if Int64.unsigned_compare pa base < 0 then hi := mid - 1
      else begin
        if Int64.unsigned_compare pa limit < 0 then found := Some d;
        lo := mid + 1
      end
    done;
    !found
  end

(* Translate a virtual address through the host MMU model: TLB lookup, then
   hardware page walk on miss; permission checks against the current ring.
   Raises [Host_fault]; the DBT engine installs the handler that services
   these (populating host page tables from guest page tables). *)
let translate t ~(access : access) va =
  if not t.paging then va
  else begin
    let vpn = Int64.shift_right_logical va 12 in
    let check ~writable ~user ~executable frame =
      (match access with
      | Write when not writable -> raise (Host_fault { va; access })
      | Exec when not executable -> raise (Host_fault { va; access })
      | _ -> ());
      if t.ring = 3 && not user then raise (Host_fault { va; access });
      Int64.logor frame (Int64.logand va 0xFFFL)
    in
    match Tlb.lookup t.tlb ~pcid:t.pcid vpn with
    | Some e -> check ~writable:e.Tlb.writable ~user:e.Tlb.user ~executable:e.Tlb.executable e.Tlb.frame
    | None -> (
      charge t Cost.tlb_miss_walk;
      match fst (Pagetable.walk t.mem ~root:t.cr3 va) with
      | None ->
        t.faults <- t.faults + 1;
        raise (Host_fault { va; access })
      | Some (_, pte) ->
        let flags = Pagetable.flags_of_bits pte in
        let frame = Pagetable.frame_of pte in
        let result =
          check ~writable:flags.Pagetable.writable ~user:flags.Pagetable.user
            ~executable:flags.Pagetable.executable frame
        in
        Tlb.insert t.tlb ~pcid:t.pcid ~vpn ~frame ~flags ~global:false;
        result)
  end

(* Memory access from generated code: translation plus the physical access,
   with MMIO routed to devices. *)
let mem_read t ~bits va =
  t.mem_ops <- t.mem_ops + 1;
  charge t Cost.mem_access;
  let pa = translate t ~access:Read va in
  match find_device t pa with
  | Some d ->
    sync_devices t;
    d.Device.read (Int64.to_int (Int64.sub pa d.Device.base)) bits
  | None -> Mem.read t.mem ~bits pa

let mem_write t ~bits va v =
  t.mem_ops <- t.mem_ops + 1;
  charge t Cost.mem_access;
  let pa = translate t ~access:Write va in
  match find_device t pa with
  | Some d ->
    sync_devices t;
    d.Device.write (Int64.to_int (Int64.sub pa d.Device.base)) bits v
  | None -> Mem.write t.mem ~bits pa v

(* Physical (ring-independent) access, used by the hypervisor itself. *)
let phys_read t ~bits pa =
  match find_device t pa with
  | Some d ->
    sync_devices t;
    d.Device.read (Int64.to_int (Int64.sub pa d.Device.base)) bits
  | None -> Mem.read t.mem ~bits pa

let phys_write t ~bits pa v =
  match find_device t pa with
  | Some d ->
    sync_devices t;
    d.Device.write (Int64.to_int (Int64.sub pa d.Device.base)) bits v
  | None -> Mem.write t.mem ~bits pa v

(* Switch page-table root.  With [pcid] the TLB entries of the previous
   address space stay resident (paper Sec. 2.7.5); without it the current
   PCID's entries are flushed, as a plain CR3 write would. *)
let set_page_table t ~root ~pcid ~keep_tlb =
  t.cr3 <- root;
  if keep_tlb then begin
    t.pcid <- pcid;
    charge t Cost.pcid_switch
  end
  else begin
    t.pcid <- pcid;
    Tlb.flush_pcid t.tlb pcid;
    charge t Cost.tlb_flush
  end

let irq_pending t =
  sync_devices t;
  Device.Intc.asserted t.intc
