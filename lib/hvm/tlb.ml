(* Model of the host CPU's hardware TLB, with PCID tags.

   Direct-mapped by VPN.  Entries are tagged with the PCID they were filled
   under; a lookup only hits entries of the current PCID, so switching
   page-table sets with PCIDs (paper Sec. 2.7.5) keeps both address
   spaces' entries resident. *)

type entry = {
  mutable valid : bool;
  mutable vpn : int64;
  mutable pcid : int;
  mutable frame : int64; (* physical page base *)
  mutable writable : bool;
  mutable user : bool;
  mutable executable : bool;
  mutable global : bool;
}

type t = {
  entries : entry array;
  size : int;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

let create ?(size = 1024) () =
  {
    entries =
      Array.init size (fun _ ->
          {
            valid = false;
            vpn = 0L;
            pcid = 0;
            frame = 0L;
            writable = false;
            user = false;
            executable = false;
            global = false;
          });
    size;
    hits = 0;
    misses = 0;
    flushes = 0;
  }

let slot t vpn = Int64.to_int (Int64.unsigned_rem vpn (Int64.of_int t.size))

let lookup t ~pcid vpn =
  let e = t.entries.(slot t vpn) in
  if e.valid && e.vpn = vpn && (e.global || e.pcid = pcid) then begin
    t.hits <- t.hits + 1;
    Some e
  end
  else begin
    t.misses <- t.misses + 1;
    None
  end

let insert t ~pcid ~vpn ~frame ~(flags : Pagetable.flags) ~global =
  let e = t.entries.(slot t vpn) in
  e.valid <- true;
  e.vpn <- vpn;
  e.pcid <- pcid;
  e.frame <- frame;
  e.writable <- flags.Pagetable.writable;
  e.user <- flags.Pagetable.user;
  e.executable <- flags.Pagetable.executable;
  e.global <- global

let flush_all t =
  t.flushes <- t.flushes + 1;
  Array.iter (fun e -> e.valid <- false) t.entries

(* Flush entries of one PCID (mov cr3 without the no-flush bit). *)
let flush_pcid t pcid =
  t.flushes <- t.flushes + 1;
  Array.iter (fun e -> if e.pcid = pcid && not e.global then e.valid <- false) t.entries

(* invlpg semantics: PCID-blind and global-blind.  The invalidation
   deliberately ignores both [e.pcid] and [e.global] — `invlpg` drops
   matching translations for every PCID *and* global entries.  Because the
   TLB is direct-mapped by VPN, at most one entry for [vpn] can be resident
   (in slot [vpn mod size]), so checking that single slot covers every
   PCID.  An entry for a *different* VPN aliasing the same slot must
   survive, hence the [e.vpn = vpn] guard. *)
let flush_page t vpn =
  let e = t.entries.(slot t vpn) in
  if e.valid && e.vpn = vpn then e.valid <- false

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.flushes <- 0
