(** Physical memory of the host virtual machine: little-endian, byte
    addressable.  Out-of-range accesses raise {!Bus_error}, surfaced by
    the machine like a hardware machine-check.  The payload carries the
    access width (in bits) and direction so memory diagnostics are
    actionable; a [Printexc] printer renders it readably. *)

exception Bus_error of { addr : int64; bits : int; write : bool }

type t = {
  bytes : Bytes.t;
  size : int;
}

val create : int -> t

val read8 : t -> int64 -> int64
val write8 : t -> int64 -> int64 -> unit
val read16 : t -> int64 -> int64
val write16 : t -> int64 -> int64 -> unit
val read32 : t -> int64 -> int64
val write32 : t -> int64 -> int64 -> unit
val read64 : t -> int64 -> int64
val write64 : t -> int64 -> int64 -> unit

(** Width-dispatched access; [bits] is 8, 16, 32 or 64. *)
val read : t -> bits:int -> int64 -> int64

val write : t -> bits:int -> int64 -> int64 -> unit

(** Bulk load (kernel and user images). *)
val blit_in : t -> addr:int64 -> Bytes.t -> unit

val zero_range : t -> addr:int64 -> len:int -> unit
