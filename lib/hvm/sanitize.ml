(* Memory-system sanitizer: shadow-oracle invariant checking for the host
   page tables, the hardware-TLB model, frame accounting, the code cache,
   and ring transitions.  See sanitize.mli for the checker inventory.

   Everything here is read-only with respect to the system under test: raw
   [Mem] reads (never [phys_read], which ticks devices), direct TLB array
   scans (never [Tlb.lookup], which counts hits/misses), and no cycle
   charges — so cycle counts and statistics of a sanitized run are
   bit-identical to an unsanitized one. *)

module Counters = Dbt_util.Stats.Counters

type checker = Pt_shadow | Tlb_shadow | Frames | Code_cache | Ring

let checker_name = function
  | Pt_shadow -> "pt"
  | Tlb_shadow -> "tlb"
  | Frames -> "frames"
  | Code_cache -> "code"
  | Ring -> "ring"

type finding = { checker : checker; detail : string }

let string_of_finding f = Printf.sprintf "[%s] %s" (checker_name f.checker) f.detail

type shadow_mapping = {
  s_pa : int64;
  mutable s_writable : bool;
  s_user : bool;
  s_executable : bool;
}

type translation_shadow = { th_len : int; th_digest : int64 }

type t = {
  (* (asid, va page) -> what the engine mapped there *)
  shadow : (int * int64, shadow_mapping) Hashtbl.t;
  (* physical pages currently write-protected because they back code *)
  code_pages : (int64, unit) Hashtbl.t;
  (* (pa, el, mmu) -> length and content hash of the translated bytes *)
  translations : (int64 * int * bool, translation_shadow) Hashtbl.t;
  counters : Counters.t;
  seen : (string, unit) Hashtbl.t; (* finding dedup *)
  mutable findings_rev : finding list;
  mutable n_findings : int;
  max_findings : int;
}

let create ?(max_findings = 200) () =
  {
    shadow = Hashtbl.create 256;
    code_pages = Hashtbl.create 64;
    translations = Hashtbl.create 256;
    counters = Counters.create ();
    seen = Hashtbl.create 64;
    findings_rev = [];
    n_findings = 0;
    max_findings;
  }

let finding t checker fmt =
  Printf.ksprintf
    (fun detail ->
      let key = checker_name checker ^ "|" ^ detail in
      if not (Hashtbl.mem t.seen key) then begin
        Hashtbl.replace t.seen key ();
        Counters.bump t.counters (checker_name checker ^ " findings");
        if t.n_findings < t.max_findings then begin
          t.findings_rev <- { checker; detail } :: t.findings_rev;
          t.n_findings <- t.n_findings + 1
        end
      end)
    fmt

let page_of pa = Int64.logand pa (Int64.lognot 0xFFFL)

(* FNV-1a over the guest bytes of a translation; the re-hash at each
   checkpoint is the missed-invalidation oracle. *)
let digest mem ~pa ~len =
  let h = ref 0xCBF29CE484222325L in
  for i = 0 to len - 1 do
    h := Int64.mul (Int64.logxor !h (Mem.read8 mem (Int64.add pa (Int64.of_int i)))) 0x100000001B3L
  done;
  !h

(* ---- recording hooks ---------------------------------------------- *)

let record_map t ~asid ~va_page ~pa_page ~(flags : Pagetable.flags) =
  Hashtbl.replace t.shadow (asid, page_of va_page)
    {
      s_pa = page_of pa_page;
      s_writable = flags.Pagetable.writable;
      s_user = flags.Pagetable.user;
      s_executable = flags.Pagetable.executable;
    }

let record_unmap t ~asid ~va_page = Hashtbl.remove t.shadow (asid, page_of va_page)

let record_protect_page t ~pa_page =
  let page = page_of pa_page in
  Hashtbl.iter (fun _ (s : shadow_mapping) -> if s.s_pa = page then s.s_writable <- false) t.shadow;
  Hashtbl.replace t.code_pages page ()

let record_invalidate_page t ~pa_page =
  let page = page_of pa_page in
  Hashtbl.remove t.code_pages page;
  let dead =
    Hashtbl.fold (fun ((pa, _, _) as k) _ acc -> if page_of pa = page then k :: acc else acc)
      t.translations []
  in
  List.iter (Hashtbl.remove t.translations) dead

let record_clear_mappings t = Hashtbl.reset t.shadow

let record_translation t ~mem ~pa ~el ~mmu ~len =
  Hashtbl.replace t.translations (pa, el, mmu)
    { th_len = len; th_digest = digest mem ~pa ~len }

(* ---- checkpoint sweep --------------------------------------------- *)

let flags_str (f : Pagetable.flags) =
  Printf.sprintf "%c%c%c"
    (if f.Pagetable.writable then 'w' else '-')
    (if f.Pagetable.user then 'u' else '-')
    (if f.Pagetable.executable then 'x' else '-')

let check t ~(machine : Machine.t) ~roots ~code_keys ~reason =
  let mem = machine.Machine.mem in
  let palloc = machine.Machine.palloc in
  let tlb = machine.Machine.tlb in
  Counters.bump t.counters "checkpoints";
  Counters.bump t.counters ("checkpoint " ^ reason);

  (* (a) page tables vs. the shadow mapping table.  The sweep also
     collects every reachable table frame for checker (c) and every live
     leaf for (b)/(d). *)
  let reachable = Hashtbl.create 64 in (* table frame -> () *)
  let live_leaves = Hashtbl.create 256 in (* (asid, va page) -> pte *)
  let in_palloc f =
    Int64.unsigned_compare f palloc.Palloc.base >= 0
    && Int64.unsigned_compare f palloc.Palloc.limit < 0
  in
  let table_perm_bits = Int64.logor Pagetable.pte_present (Int64.logor Pagetable.pte_writable Pagetable.pte_user) in
  Array.iteri
    (fun asid root ->
      let rec sweep table level va_base =
        for i = 0 to 511 do
          let pte = Mem.read64 mem (Int64.add table (Int64.of_int (8 * i))) in
          if Int64.logand pte Pagetable.pte_present <> 0L then begin
            let va = Int64.logor va_base (Int64.shift_left (Int64.of_int i) (12 + (9 * level))) in
            if level > 0 then begin
              Counters.bump t.counters "pt intermediate entries checked";
              let f = Pagetable.frame_of pte in
              (* Intermediate levels must be exactly maximally permissive
                 (P|W|U, no NX, no stray bits): x86 ANDs permissions
                 across levels, so anything less escalates restrictions
                 and anything more is a corrupt descriptor. *)
              if pte <> Int64.logor f table_perm_bits then
                finding t Pt_shadow
                  "as%d L%d table descriptor for va 0x%Lx not maximally permissive: 0x%Lx" asid
                  level va pte;
              if (not (in_palloc f)) || Int64.logand f 0xFFFL <> 0L then
                finding t Frames "as%d L%d table frame 0x%Lx outside the frame allocator region"
                  asid level f
              else if Hashtbl.mem reachable f then
                finding t Frames "table frame 0x%Lx double-mapped (reached again at as%d L%d va 0x%Lx)"
                  f asid level va
              else begin
                Hashtbl.replace reachable f ();
                sweep f (level - 1) va
              end
            end
            else begin
              Counters.bump t.counters "pt leaves checked";
              Hashtbl.replace live_leaves (asid, va) pte;
              match Hashtbl.find_opt t.shadow (asid, va) with
              | None ->
                finding t Pt_shadow "dangling PTE: as%d va 0x%Lx -> 0x%Lx has no shadow mapping"
                  asid va pte
              | Some s ->
                if Pagetable.frame_of pte <> s.s_pa then
                  finding t Pt_shadow "as%d va 0x%Lx maps frame 0x%Lx but the shadow says 0x%Lx"
                    asid va (Pagetable.frame_of pte) s.s_pa;
                let fl = Pagetable.flags_of_bits pte in
                if
                  fl.Pagetable.writable <> s.s_writable
                  || fl.Pagetable.user <> s.s_user
                  || fl.Pagetable.executable <> s.s_executable
                then
                  finding t Pt_shadow "as%d va 0x%Lx permissions %s but the shadow says %s" asid va
                    (flags_str fl)
                    (flags_str
                       {
                         Pagetable.writable = s.s_writable;
                         user = s.s_user;
                         executable = s.s_executable;
                       })
            end
          end
        done
      in
      Hashtbl.replace reachable root ();
      sweep root 3 0L)
    roots;
  (* The reverse direction: every shadow mapping must still be present. *)
  Hashtbl.iter
    (fun (asid, va) (s : shadow_mapping) ->
      Counters.bump t.counters "pt shadow entries checked";
      if not (Hashtbl.mem live_leaves (asid, va)) then
        finding t Pt_shadow "lost mapping: shadow has as%d va 0x%Lx -> 0x%Lx but the walk finds nothing"
          asid va s.s_pa)
    t.shadow;

  (* (b) every valid hardware-TLB entry must be derivable from the
     current page tables under its PCID.  Entries are scanned directly —
     [Tlb.lookup] would perturb the hit/miss statistics. *)
  let derivable root (e : Tlb.entry) =
    match fst (Pagetable.walk mem ~root (Int64.shift_left e.Tlb.vpn 12)) with
    | None -> false
    | Some (_, pte) ->
      Pagetable.frame_of pte = e.Tlb.frame
      &&
      let fl = Pagetable.flags_of_bits pte in
      fl.Pagetable.writable = e.Tlb.writable
      && fl.Pagetable.user = e.Tlb.user
      && fl.Pagetable.executable = e.Tlb.executable
  in
  Array.iter
    (fun (e : Tlb.entry) ->
      if e.Tlb.valid then begin
        Counters.bump t.counters "tlb entries checked";
        if e.Tlb.global then begin
          if not (Array.exists (fun root -> derivable root e) roots) then
            finding t Tlb_shadow
              "stale global TLB entry: vpn 0x%Lx -> 0x%Lx derivable from no live root" e.Tlb.vpn
              e.Tlb.frame
        end
        else if e.Tlb.pcid < 0 || e.Tlb.pcid >= Array.length roots then
          finding t Tlb_shadow "TLB entry vpn 0x%Lx carries unknown PCID %d" e.Tlb.vpn e.Tlb.pcid
        else if not (derivable roots.(e.Tlb.pcid) e) then
          finding t Tlb_shadow
            "stale TLB entry: pcid %d vpn 0x%Lx -> 0x%Lx (%s) not derivable from the current page tables"
            e.Tlb.pcid e.Tlb.vpn e.Tlb.frame
            (flags_str
               {
                 Pagetable.writable = e.Tlb.writable;
                 user = e.Tlb.user;
                 executable = e.Tlb.executable;
               })
      end)
    tlb.Tlb.entries;

  (* (c) frame accounting against Palloc: the allocated region must
     partition exactly into reachable table frames and free-listed
     frames. *)
  let free = Hashtbl.create 64 in
  List.iter
    (fun f ->
      Counters.bump t.counters "frames free-listed";
      if Hashtbl.mem free f then finding t Frames "frame 0x%Lx on the free list twice (double free)" f
      else Hashtbl.replace free f ();
      if Hashtbl.mem reachable f then
        finding t Frames "frame 0x%Lx freed but still mapped in a page table" f)
    palloc.Palloc.free;
  let n_alloc = Int64.to_int (Int64.div (Int64.sub palloc.Palloc.next palloc.Palloc.base) 4096L) in
  for i = 0 to n_alloc - 1 do
    let f = Int64.add palloc.Palloc.base (Int64.mul (Int64.of_int i) 4096L) in
    if (not (Hashtbl.mem reachable f)) && not (Hashtbl.mem free f) then
      finding t Frames "frame 0x%Lx leaked: allocated but neither reachable from a root nor free" f
  done;
  Counters.bump t.counters "frames swept" ~by:n_alloc;

  (* (d) code-cache coherence: W^X over every mapping and TLB entry of a
     protected page, and a content re-hash of every live translation. *)
  Hashtbl.iter
    (fun page () ->
      Counters.bump t.counters "code pages checked";
      Hashtbl.iter
        (fun (asid, va) (s : shadow_mapping) ->
          if s.s_pa = page then begin
            if s.s_writable then
              finding t Code_cache "shadow mapping of code page 0x%Lx at as%d va 0x%Lx is writable"
                page asid va;
            match Hashtbl.find_opt live_leaves (asid, va) with
            | Some pte when (Pagetable.flags_of_bits pte).Pagetable.writable ->
              finding t Code_cache
                "writable host mapping of code page 0x%Lx at as%d va 0x%Lx (W^X violated)" page asid
                va
            | _ -> ()
          end)
        t.shadow;
      Array.iter
        (fun (e : Tlb.entry) ->
          if e.Tlb.valid && page_of e.Tlb.frame = page && e.Tlb.writable then
            finding t Code_cache "writable TLB entry for code page 0x%Lx (pcid %d vpn 0x%Lx)" page
              e.Tlb.pcid e.Tlb.vpn)
        tlb.Tlb.entries)
    t.code_pages;
  Hashtbl.iter
    (fun (pa, el, mmu) (th : translation_shadow) ->
      Counters.bump t.counters "code translations hashed";
      if not (Hashtbl.mem t.code_pages (page_of pa)) then
        finding t Code_cache "translation at pa 0x%Lx (el%d, mmu %b) backed by unprotected page 0x%Lx"
          pa el mmu (page_of pa);
      if th.th_len > 0 && digest mem ~pa ~len:th.th_len <> th.th_digest then
        finding t Code_cache
          "guest code at pa 0x%Lx (el%d, mmu %b, %d bytes) changed under a live translation: invalidate_page never fired"
          pa el mmu th.th_len)
    t.translations;

  (* (d') published-cache snapshot audit (concurrent JIT): every key the
     engine's sharded code cache publishes at this checkpoint must have
     been narrated through [record_translation] — so its guest bytes are
     re-hashed above — and must sit on a write-protected page.  A stale
     install (an in-flight translation job landing after its page's SMC
     invalidation) surfaces here as an unnarrated or unprotected key. *)
  match code_keys with
  | None -> ()
  | Some keys ->
    List.iter
      (fun ((pa, el, mmu) as k) ->
        Counters.bump t.counters "code published keys checked";
        if not (Hashtbl.mem t.translations k) then
          finding t Code_cache
            "published cache key pa 0x%Lx (el%d, mmu %b) has no recorded translation (stale install)"
            pa el mmu;
        if not (Hashtbl.mem t.code_pages (page_of pa)) then
          finding t Code_cache
            "published cache key pa 0x%Lx (el%d, mmu %b) on unprotected page 0x%Lx" pa el mmu
            (page_of pa))
      keys

(* (e) ring/privilege audit, run at block-dispatch time. *)
let audit_ring t ~(machine : Machine.t) ~roots ~asid ~guest_el ~pc =
  Counters.bump t.counters "ring audits";
  let ring = machine.Machine.ring in
  if guest_el = 0 <> (ring = 3) then
    finding t Ring "guest EL%d dispatched in host ring %d" guest_el ring;
  if ring = 3 && machine.Machine.paging && asid >= 0 && asid < Array.length roots then begin
    let va_page = page_of (Int64.logand pc 0x0000_7FFF_FFFF_FFFFL) in
    match fst (Pagetable.walk machine.Machine.mem ~root:roots.(asid) va_page) with
    | Some (_, pte) when not (Pagetable.flags_of_bits pte).Pagetable.user ->
      finding t Ring "user code at pc 0x%Lx runs over a kernel-only host mapping (as%d va 0x%Lx)" pc
        asid va_page
    | _ -> () (* not yet demand-paged: nothing to audit *)
  end

(* ---- results ------------------------------------------------------ *)

let ok t = t.findings_rev = []
let findings t = List.rev t.findings_rev
let counters t = t.counters

let report t =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string b (string_of_finding f);
      Buffer.add_char b '\n')
    (findings t);
  Buffer.add_string b (Counters.report t.counters);
  Buffer.contents b
