(** Memory-system sanitizer: an independent shadow oracle of what the
    host MMU state {e must} be, checked against the real state.

    The engine reports every state transition it performs (mapping a host
    page, write-protecting a code page, invalidating a translation,
    clearing the guest half on a guest TLB flush, registering a
    translation) through the [record_*] hooks; {!check} then sweeps the
    {e real} state — the page tables in host physical memory, the
    hardware-TLB model, the frame allocator — and reports any divergence.
    Five checkers run at each checkpoint:

    - {b pt}: full walks of every live root against the shadow mapping
      table — no dangling PTEs, no lost mappings, no permission
      escalation at intermediate levels, NX/user/writable exactly as
      mapped.
    - {b tlb}: every valid hardware-TLB entry must be derivable from the
      current page tables under its PCID (or, for global entries, under
      some root) — stale entries after [clear_low_half], [unmap],
      [protect] or a flush are hard findings.
    - {b frames}: frame accounting against {!Palloc} — no leaked,
      double-mapped, or freed-but-mapped table frames.
    - {b code}: code-cache coherence — every translation's backing
      guest-physical page is still write-protected (W^X), and the
      translated bytes still hash to what was translated, i.e.
      [invalidate_page] fired for every write to a translated page.
    - {b ring}: guest user code only runs on user-bit mappings in host
      ring 3 (see {!audit_ring}).

    The sanitizer is deliberately invisible to the system under test: it
    reads memory through raw {!Mem} accessors (never [phys_read]), scans
    TLB entries directly (never [Tlb.lookup]), and charges no cycles —
    a sanitized run's cycle count and statistics are bit-identical to an
    unsanitized one. *)

type checker = Pt_shadow | Tlb_shadow | Frames | Code_cache | Ring

val checker_name : checker -> string

type finding = { checker : checker; detail : string }

val string_of_finding : finding -> string

type t

(** [create ()] starts with an empty shadow (no mappings, no code pages,
    no translations).  [max_findings] bounds the retained finding list
    (counters keep exact totals); findings are deduplicated by detail. *)
val create : ?max_findings:int -> unit -> t

(** {2 Recording hooks — the engine narrates its transitions} *)

(** A host mapping [va_page -> pa_page] was installed (or re-installed
    with new permissions) in address space [asid]. *)
val record_map :
  t -> asid:int -> va_page:int64 -> pa_page:int64 -> flags:Pagetable.flags -> unit

(** The leaf mapping of [va_page] in [asid] was removed. *)
val record_unmap : t -> asid:int -> va_page:int64 -> unit

(** Physical page [pa_page] now backs translated code: every shadow
    mapping of it is downgraded to read-only and the page joins the
    write-protected set. *)
val record_protect_page : t -> pa_page:int64 -> unit

(** A guest write hit protected page [pa_page]: its translations are
    dropped from the shadow and it leaves the write-protected set. *)
val record_invalidate_page : t -> pa_page:int64 -> unit

(** The guest half of every address space was torn down
    ([clear_low_half] on all roots + full TLB flush).  Code pages and
    translations survive — the code cache is physically indexed. *)
val record_clear_mappings : t -> unit

(** A translation of [len] guest bytes at physical address [pa] was
    registered in the code cache under key [(pa, el, mmu)]; the bytes
    are hashed now and re-hashed at every checkpoint. *)
val record_translation :
  t -> mem:Mem.t -> pa:int64 -> el:int -> mmu:bool -> len:int -> unit

(** {2 Checkpoints} *)

(** Run checkers (a)–(d) against the machine's real state.  [roots] are
    the live page-table roots, indexed by address-space id / PCID.
    [code_keys], when [Some], is a snapshot of the keys the engine's
    sharded code cache currently publishes: each must have a recorded
    translation (content-hash-checked) and a write-protected backing
    page — the coherence audit for concurrently-installed translations.
    [reason] tags the checkpoint in the counters. *)
val check :
  t ->
  machine:Machine.t ->
  roots:int64 array ->
  code_keys:(int64 * int * bool) list option ->
  reason:string ->
  unit

(** Checker (e), run at block-dispatch time: guest EL0 must execute in
    host ring 3 and vice versa, and in ring 3 the (present) host mapping
    of the executing page must carry the user bit. *)
val audit_ring :
  t -> machine:Machine.t -> roots:int64 array -> asid:int -> guest_el:int -> pc:int64 -> unit

(** {2 Results} *)

val ok : t -> bool

(** Distinct findings in discovery order (capped at [max_findings]). *)
val findings : t -> finding list

(** Per-checker counters: work performed ("pt leaves checked", "tlb
    entries checked", ...) and findings ("pt findings", ...), plus
    checkpoint totals. *)
val counters : t -> Dbt_util.Stats.Counters.t

(** Findings (one per line) followed by the counter report. *)
val report : t -> string
