(* The assembled RV64IM guest.

   User-level only (matching Table 5 of the paper, where RISC-V lacks
   full-system support): memory is identity-mapped, there is no privilege
   distinction, and ECALL implements a minimal exit convention
   (a7 = 93 -> exit(a0), anything else is skipped).  Device access works
   through plain MMIO stores. *)

open Guest.Ops

let model = lazy (Ssa.Offline.build ~opt_level:4 Riscv_descr.source)
let model_at_level level = Ssa.Offline.build ~opt_level:level Riscv_descr.source

let flat_perms = { pr = true; pw = true; px = true; puser = true }

let ops ?opt_level () : ops =
  let model =
    match opt_level with None -> Lazy.force model | Some l -> model_at_level l
  in
  {
    name = "rv64im";
    description = "64-bit RISC-V (RV64IM) guest, user-level";
    model;
    insn_size = 4;
    regfile_size = 512;
    bank_offset = (fun ~bank:_ ~index -> 8 * (index land 31));
    slot_offset = (fun s -> 256 + (8 * s));
    mmu_enabled = (fun _ -> false);
    mmu_translate = (fun _ ~access:_ va -> Ok (va, flat_perms));
    address_space = (fun _ _ -> 0);
    privilege_level = (fun _ -> 1);
    take_exception =
      (fun c ~ec:_ ~iss:_ ->
        (* ECALL: a7 (x17) selects the service. *)
        let a7 = c.read_bank 0 17 in
        if a7 = 93L then raise (Hvm.Machine.Powered_off (Int64.to_int (Int64.logand (c.read_bank 0 10) 0xFFL)))
        else c.set_pc (Int64.add (c.get_pc ()) 4L));
    data_abort = (fun _ ~va:_ ~access:_ ~fault:_ -> ());
    insn_abort = (fun _ ~va:_ ~fault:_ -> ());
    undefined_insn = (fun c -> c.set_pc (Int64.add (c.get_pc ()) 4L));
    eret = (fun _ -> ());
    deliver_irq = (fun _ -> false);
    coproc_read = (fun _ _ -> 0L);
    coproc_write = (fun _ _ _ -> Ce_none);
    reset =
      (fun c ~entry ->
        c.set_pc entry;
        c.write_bank 0 2 0x0100_0000L (* sp *));
  }
