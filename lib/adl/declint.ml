(* Static analysis of ADL decode tables.

   The decoder generator (Decode) compiles the per-instruction bit
   patterns into a decision tree and resolves residual overlap by trying
   leaf entries in declaration order, consulting `when` predicates.
   That scheme silently tolerates description bugs: two patterns whose
   match sets intersect with no predicate to pick a winner decode to
   whichever was declared first, and a pattern whose match set is
   entirely contained in an earlier unconditional one can never decode
   at all.  This lint finds both, plus field-extraction plans that
   reference bits outside the 32-bit instruction word and `when`
   predicates over fields the pattern does not define. *)

open Ast
module Bits = Dbt_util.Bits

type kind =
  | Overlap (* ambiguous overlap, no `when` to disambiguate *)
  | Shadowed (* fully covered by an earlier unconditional pattern *)
  | Bad_field (* extraction plan references bits outside the word *)
  | Bad_when (* predicate references a field the pattern lacks *)

let string_of_kind = function
  | Overlap -> "overlap"
  | Shadowed -> "shadowed"
  | Bad_field -> "bad-field"
  | Bad_when -> "bad-when"

type violation = {
  l_insn : string;
  l_other : string option; (* the conflicting entry, for pairwise findings *)
  l_kind : kind;
  l_msg : string;
}

let string_of_violation v =
  Printf.sprintf "[%s] %s%s: %s" (string_of_kind v.l_kind) v.l_insn
    (match v.l_other with Some o -> " vs " ^ o | None -> "")
    v.l_msg

(* Tolerant variant of Decode.compile_entry: computes the fixed-bit
   mask/value and the field plan without asserting, flagging
   out-of-range bit references instead.  Returns None when the pattern
   is too malformed for overlap analysis. *)
let summarize (d : decode) (emit : violation -> unit) =
  let width = 32 in
  let mask = ref 0L and value = ref 0L in
  let pos = ref width in
  let ok = ref true in
  List.iter
    (fun tok ->
      match tok with
      | Bit b ->
        decr pos;
        if !pos < 0 then ok := false
        else begin
          mask := Int64.logor !mask (Bits.shl 1L !pos);
          if b then value := Int64.logor !value (Bits.shl 1L !pos)
        end
      | Fld (name, w) ->
        pos := !pos - w;
        if w <= 0 || !pos < 0 then begin
          ok := false;
          emit
            {
              l_insn = d.d_name;
              l_other = None;
              l_kind = Bad_field;
              l_msg =
                Printf.sprintf "field %s:%d extracts bits [%d, %d) outside the %d-bit word" name w
                  !pos (!pos + w) width;
            }
        end)
    d.d_pattern;
  if !pos <> 0 then begin
    emit
      {
        l_insn = d.d_name;
        l_other = None;
        l_kind = Bad_field;
        l_msg = Printf.sprintf "pattern covers %d bits, expected %d" (width - !pos) width;
      };
    ok := false
  end;
  if !ok then Some (!mask, !value) else None

let pattern_fields (d : decode) =
  List.filter_map (function Fld (n, _) -> Some n | Bit _ -> None) d.d_pattern

(* Fields referenced by a `when` predicate.  Bare identifiers are
   rewritten to [Field] by the type checker; before type checking they
   still appear as [Var], so collect both. *)
let rec expr_fields (e : expr) : string list =
  match e.e with
  | Int_lit _ | Float_lit _ -> []
  | Var n | Field n -> [ n ]
  | Binop (_, a, b) -> expr_fields a @ expr_fields b
  | Unop (_, a) | Cast (_, a) -> expr_fields a
  | Call (_, args) -> List.concat_map expr_fields args
  | Ternary (c, t, f) -> expr_fields c @ expr_fields t @ expr_fields f

let check_when (d : decode) (emit : violation -> unit) =
  match d.d_when with
  | None -> ()
  | Some pred ->
    let have = pattern_fields d in
    List.iter
      (fun n ->
        if not (List.mem n have) then
          emit
            {
              l_insn = d.d_name;
              l_other = None;
              l_kind = Bad_when;
              l_msg = Printf.sprintf "`when` predicate references field %S not in the pattern" n;
            })
      (List.sort_uniq compare (expr_fields pred))

(* Match-set relations between two summarized entries.

   compatible: some word matches both fixed-bit constraints (the masks
   agree wherever both fix bits).

   subsumes a b: every word matching b's constraint also matches a's
   (a fixes a subset of b's bits, agreeing on all of them). *)
let compatible (m1, v1) (m2, v2) =
  let common = Int64.logand m1 m2 in
  Int64.logand v1 common = Int64.logand v2 common

let subsumes (m1, v1) (m2, v2) = Int64.logand m1 m2 = m1 && Int64.logand v2 m1 = v1

let check_decodes (decodes : decode list) : violation list =
  let violations = ref [] in
  let emit v = violations := v :: !violations in
  let summarized =
    List.filter_map
      (fun d ->
        check_when d emit;
        match summarize d emit with Some mv -> Some (d, mv) | None -> None)
      decodes
  in
  (* Pairwise analysis in declaration order. *)
  let rec pairs = function
    | [] -> ()
    | (d1, mv1) :: rest ->
      List.iter
        (fun (d2, mv2) ->
          if compatible mv1 mv2 then begin
            if subsumes mv1 mv2 && d1.d_when = None then
              (* d1 is earlier, matches everything d2 matches, and has no
                 predicate: d2 can never decode. *)
              emit
                {
                  l_insn = d2.d_name;
                  l_other = Some d1.d_name;
                  l_kind = Shadowed;
                  l_msg =
                    Printf.sprintf
                      "pattern is unreachable: every matching word already decodes as %S" d1.d_name;
                }
            else if
              (not (subsumes mv1 mv2)) && (not (subsumes mv2 mv1))
              && d1.d_when = None && d2.d_when = None
            then
              (* Genuinely intersecting match sets, neither contains the
                 other, and no predicate on either side: the winner in the
                 intersection is whichever happens to be declared first. *)
              emit
                {
                  l_insn = d1.d_name;
                  l_other = Some d2.d_name;
                  l_kind = Overlap;
                  l_msg = "match sets intersect and no `when` predicate disambiguates";
                }
          end)
        rest;
      pairs rest
  in
  pairs summarized;
  List.rev !violations

let check_arch (arch : arch) : violation list = check_decodes arch.a_decodes
