(** Static analysis of ADL decode tables.

    Finds description bugs the decoder generator silently tolerates:
    patterns whose match sets intersect with no [when] predicate to pick
    a winner (decode order becomes load-bearing by accident), patterns
    fully shadowed by an earlier unconditional entry (unreachable),
    field-extraction plans referencing bits outside the 32-bit
    instruction word, and [when] predicates over fields the pattern does
    not define.

    Containment with the more specific pattern declared first is *not*
    flagged: leaf entries are tried in declaration order, so that is the
    idiomatic way to express priority. *)

type kind =
  | Overlap  (** ambiguous overlap, no [when] to disambiguate *)
  | Shadowed  (** fully covered by an earlier unconditional pattern *)
  | Bad_field  (** extraction plan references bits outside the word *)
  | Bad_when  (** predicate references a field the pattern lacks *)

val string_of_kind : kind -> string

type violation = {
  l_insn : string;
  l_other : string option;  (** the conflicting entry, for pairwise findings *)
  l_kind : kind;
  l_msg : string;
}

val string_of_violation : violation -> string

(** Analyse a raw decode list (usable on hand-built fixtures that never
    went through the parser). *)
val check_decodes : Ast.decode list -> violation list

(** Analyse an architecture's full decode table. *)
val check_arch : Ast.arch -> violation list
