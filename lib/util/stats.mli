(** Summary statistics for the benchmark harness, plus named counters
    for structured tool output. *)

(** Named integer counters preserving first-bump order; used by the
    lint driver to report per-category totals.

    Domain-safe: each domain accumulates into its own lazily-created
    shard ({!Domain.DLS}), so {!bump} is race-free and lock-free on the
    hot path; reads ({!get}, {!to_list}, {!report}, {!to_json}) merge
    all shards.  Single-domain output is identical to the historical
    one-table implementation. *)
module Counters : sig
  type t

  val create : unit -> t
  val bump : ?by:int -> t -> string -> unit
  val get : t -> string -> int

  (** [(name, count)] pairs in first-bump order. *)
  val to_list : t -> (string * int) list

  (** Aligned multi-line rendering of {!to_list}. *)
  val report : t -> string

  (** One JSON object mapping counter names to totals, in first-bump
      order; consumed by [captive_run lint --json]. *)
  val to_json : t -> string
end

(** Quote and escape a string as a JSON string literal. *)
val json_string : string -> string

val mean : float list -> float

(** Geometric mean (the aggregate the paper reports for Figs. 17/18). *)
val geomean : float list -> float

val min_max : float list -> float * float

(** Least-squares fit [y = a + b*x]; returns [(a, b)].  Used for the
    Fig. 21 log-log regression over per-block execution times.
    @raise Invalid_argument on fewer than two points. *)
val linear_regression : (float * float) list -> float * float

(** [percentile xs p] for [p] in 0..100; nan on the empty list. *)
val percentile : float list -> float -> float
