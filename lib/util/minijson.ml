(* Minimal flat-JSON reader for the bench regression gate.

   The repo deliberately carries no JSON dependency; the bench baseline
   (`bench/baseline.json`) is a sequence of one-line flat objects with
   string / number / boolean fields, exactly as emitted by
   `captive_run bench --quick --json`.  This reader parses that shape
   and nothing more (no nesting, no arrays). *)

type value = S of string | N of float | B of bool | Null

exception Malformed of string

let parse_line (line : string) : (string * value) list =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Malformed (Printf.sprintf "expected %C at %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Malformed "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some c -> Buffer.add_char b c
        | None -> raise (Malformed "unterminated escape"));
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> S (parse_string ())
    | Some 't' when !pos + 4 <= n && String.sub line !pos 4 = "true" ->
      pos := !pos + 4;
      B true
    | Some 'f' when !pos + 5 <= n && String.sub line !pos 5 = "false" ->
      pos := !pos + 5;
      B false
    | Some 'n' when !pos + 4 <= n && String.sub line !pos 4 = "null" ->
      pos := !pos + 4;
      Null
    | Some ('-' | '0' .. '9') ->
      let start = !pos in
      while
        !pos < n
        && match line.[!pos] with '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true | _ -> false
      do
        advance ()
      done;
      N (float_of_string (String.sub line start (!pos - start)))
    | _ -> raise (Malformed (Printf.sprintf "bad value at %d" !pos))
  in
  skip_ws ();
  if peek () = None then []
  else begin
    expect '{';
    skip_ws ();
    if peek () = Some '}' then []
    else begin
      let fields = ref [] in
      let continue_ = ref true in
      while !continue_ do
        let k = (skip_ws (); parse_string ()) in
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' ->
          advance ();
          continue_ := false
        | _ -> raise (Malformed "expected ',' or '}'")
      done;
      List.rev !fields
    end
  end

let parse_line_opt line = try Some (parse_line line) with Malformed _ | Failure _ -> None
let find_string fields k = match List.assoc_opt k fields with Some (S s) -> Some s | _ -> None
let find_number fields k = match List.assoc_opt k fields with Some (N f) -> Some f | _ -> None
let find_bool fields k = match List.assoc_opt k fields with Some (B b) -> Some b | _ -> None
