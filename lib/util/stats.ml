(* Summary statistics for the benchmark harness, plus named counters for
   structured tool output (the lint driver). *)

(* Quote and escape a string as a JSON string literal. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

module Counters = struct
  type t = { tbl : (string, int) Hashtbl.t; mutable order : string list (* first-bump order *) }

  let create () = { tbl = Hashtbl.create 16; order = [] }

  let bump ?(by = 1) t name =
    match Hashtbl.find_opt t.tbl name with
    | Some v -> Hashtbl.replace t.tbl name (v + by)
    | None ->
      Hashtbl.replace t.tbl name by;
      t.order <- name :: t.order

  let get t name = Option.value ~default:0 (Hashtbl.find_opt t.tbl name)

  (* (name, count) pairs in first-bump order. *)
  let to_list t = List.rev_map (fun name -> (name, Hashtbl.find t.tbl name)) t.order

  let report t =
    let items = to_list t in
    let w = List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 items in
    String.concat "" (List.map (fun (n, v) -> Printf.sprintf "  %-*s %d\n" w n v) items)

  let to_json t =
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map (fun (n, v) -> Printf.sprintf "%s:%d" (json_string n) v) (to_list t)))
end

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> nan
  | xs -> exp (mean (List.map log xs))

let min_max = function
  | [] -> (nan, nan)
  | x :: xs -> List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

(* Least-squares fit y = a + b*x; returns (a, b). Used for the Fig. 21
   log-log regression over per-block execution times. *)
let linear_regression pts =
  let n = float_of_int (List.length pts) in
  if n < 2.0 then invalid_arg "Stats.linear_regression";
  let sx = List.fold_left (fun s (x, _) -> s +. x) 0.0 pts in
  let sy = List.fold_left (fun s (_, y) -> s +. y) 0.0 pts in
  let sxx = List.fold_left (fun s (x, _) -> s +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun s (x, y) -> s +. (x *. y)) 0.0 pts in
  let b = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
  let a = (sy -. (b *. sx)) /. n in
  (a, b)

let percentile xs p =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
    let arr = Array.of_list sorted in
    let idx = int_of_float (p /. 100.0 *. float_of_int (Array.length arr - 1)) in
    arr.(max 0 (min idx (Array.length arr - 1)))
