(* Summary statistics for the benchmark harness, plus named counters for
   structured tool output (the lint driver). *)

(* Quote and escape a string as a JSON string literal. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

module Counters = struct
  (* Counters are bumped from the vCPU and, since the concurrent-JIT
     engine, from worker domains (e.g. the sanitizer's work counters
     inside a checkpoint a worker triggered, or per-job accounting).
     Plain shared mutable ints would race, so each domain accumulates
     into its own shard — created lazily via [Domain.DLS] on the first
     bump in that domain and registered under a mutex — and reads merge
     the shards.  The hot path ([bump]) touches only domain-local state
     after the first access; single-domain usage degenerates to exactly
     the old one-Hashtbl behavior, preserving report/JSON output
     byte-for-byte. *)
  type shard = {
    tbl : (string, int) Hashtbl.t;
    mutable order : string list; (* first-bump order, newest first *)
  }

  type t = {
    key : shard Domain.DLS.key;
    mu : Mutex.t;
    shards : shard list ref; (* registration order, newest first *)
  }

  let create () =
    let mu = Mutex.create () in
    let shards = ref [] in
    let key =
      Domain.DLS.new_key (fun () ->
          let s = { tbl = Hashtbl.create 16; order = [] } in
          Mutex.lock mu;
          shards := s :: !shards;
          Mutex.unlock mu;
          s)
    in
    { key; mu; shards }

  let bump ?(by = 1) t name =
    let s = Domain.DLS.get t.key in
    match Hashtbl.find_opt s.tbl name with
    | Some v -> Hashtbl.replace s.tbl name (v + by)
    | None ->
      Hashtbl.replace s.tbl name by;
      s.order <- name :: s.order

  (* Merge every domain's shard: totals summed, names ordered by first
     bump (shards visited in registration order so a single-domain
     run's order is unchanged). *)
  let to_list t =
    Mutex.lock t.mu;
    let shards = List.rev !(t.shards) in
    Mutex.unlock t.mu;
    let totals = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun s ->
        List.iter
          (fun name ->
            let v = Option.value ~default:0 (Hashtbl.find_opt s.tbl name) in
            match Hashtbl.find_opt totals name with
            | Some v0 -> Hashtbl.replace totals name (v0 + v)
            | None ->
              Hashtbl.replace totals name v;
              order := name :: !order)
          (List.rev s.order))
      shards;
    List.rev_map (fun name -> (name, Hashtbl.find totals name)) !order

  let get t name =
    List.fold_left (fun acc (n, v) -> if n = name then acc + v else acc) 0 (to_list t)

  let report t =
    let items = to_list t in
    let w = List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 items in
    String.concat "" (List.map (fun (n, v) -> Printf.sprintf "  %-*s %d\n" w n v) items)

  let to_json t =
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map (fun (n, v) -> Printf.sprintf "%s:%d" (json_string n) v) (to_list t)))
end

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> nan
  | xs -> exp (mean (List.map log xs))

let min_max = function
  | [] -> (nan, nan)
  | x :: xs -> List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

(* Least-squares fit y = a + b*x; returns (a, b). Used for the Fig. 21
   log-log regression over per-block execution times. *)
let linear_regression pts =
  let n = float_of_int (List.length pts) in
  if n < 2.0 then invalid_arg "Stats.linear_regression";
  let sx = List.fold_left (fun s (x, _) -> s +. x) 0.0 pts in
  let sy = List.fold_left (fun s (_, y) -> s +. y) 0.0 pts in
  let sxx = List.fold_left (fun s (x, _) -> s +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun s (x, y) -> s +. (x *. y)) 0.0 pts in
  let b = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
  let a = (sy -. (b *. sx)) /. n in
  (a, b)

let percentile xs p =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
    let arr = Array.of_list sorted in
    let idx = int_of_float (p /. 100.0 *. float_of_int (Array.length arr - 1)) in
    arr.(max 0 (min idx (Array.length arr - 1)))
