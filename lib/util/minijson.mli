(** Minimal flat-JSON reader for the bench regression gate: one object
    per line, string / number / boolean fields only (the exact shape
    emitted by [captive_run bench --quick --json]).  No external JSON
    dependency. *)

type value = S of string | N of float | B of bool | Null

exception Malformed of string

(** Parse one line; raises {!Malformed} on anything that isn't a flat
    object.  An empty (or all-whitespace) line parses to []. *)
val parse_line : string -> (string * value) list

(** [parse_line] with malformed input mapped to [None]. *)
val parse_line_opt : string -> (string * value) list option

val find_string : (string * value) list -> string -> string option
val find_number : (string * value) list -> string -> float option
val find_bool : (string * value) list -> string -> bool option
